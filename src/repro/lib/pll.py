"""Behavioral phase-locked loop (Phase 2 RF/wireless library).

A classic type-II PLL at the phase/behavioural abstraction: multiplier
phase detector, proportional-integral loop filter, and an NCO whose
frequency is steered by the filter output.  Useful for carrier recovery
and clock-multiplication workloads in receiver models.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut


class BehavioralPll(TdfModule):
    """Multiplier PD + PI filter + NCO, sample-rate behavioural model.

    Ports: ``inp`` (the reference carrier), ``out`` (the NCO output),
    plus diagnostic outputs ``freq`` (instantaneous NCO frequency [Hz])
    and ``phase_error`` (loop-filter input, after the PD's lowpass).
    """

    def __init__(self, name: str, center_frequency: float,
                 loop_bandwidth: float = None,
                 kp: Optional[float] = None, ki: Optional[float] = None,
                 pd_pole: Optional[float] = None,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.freq = TdfOut("freq")
        self.phase_error = TdfOut("phase_error")
        self.center_frequency = center_frequency
        bandwidth = loop_bandwidth or center_frequency / 100.0
        # Standard 2nd-order design: natural frequency ~ bandwidth,
        # damping 0.707.  PD gain for unit carriers is 1/2.
        wn = 2 * np.pi * bandwidth
        self.kp = kp if kp is not None else 2 * 0.707 * wn / (0.5 * np.pi)
        self.ki = ki if ki is not None else wn * wn / (0.5 * np.pi)
        self.pd_pole = pd_pole or 4 * bandwidth
        self._phase = 0.0
        self._integrator = 0.0
        self._pd_state = 0.0

    def processing(self):
        dt = self.timestep.to_seconds()
        reference = self.inp.read()
        nco = np.cos(self._phase)
        # Multiplier PD followed by a one-pole lowpass (kills the 2f
        # component); with sin/cos inputs the useful term is
        # 0.5*sin(phase difference).
        product = reference * -np.sin(self._phase)
        alpha = 1.0 - np.exp(-2 * np.pi * self.pd_pole * dt)
        self._pd_state += alpha * (product - self._pd_state)
        error = self._pd_state
        self._integrator += self.ki * error * dt
        control = self.kp * error + self._integrator
        frequency = self.center_frequency + control
        self._phase += 2 * np.pi * frequency * dt
        self._phase = float(np.mod(self._phase, 2 * np.pi * 1e6))
        self.out.write(nco)
        self.freq.write(frequency)
        self.phase_error.write(error)

    def checkpoint_state(self):
        return {"phase": self._phase,
                "integrator": self._integrator,
                "pd_state": self._pd_state}

    def restore_state(self, data):
        if data is not None:
            self._phase = float(data["phase"])
            self._integrator = float(data["integrator"])
            self._pd_state = float(data["pd_state"])
