"""Functional signal-flow blocks: amplifiers, mixers, comparators,
sample-and-hold, sinks.

These are the "more complex functional (signal-flow) models, e.g.
amplifiers, converters" of the paper's Phase 2 library, modeled as TDF
modules.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.module import Module
from ..core.signal import Signal
from ..core.time import SimTime
from ..tdf.module import TdfDeOut, TdfModule
from ..tdf.signal import TdfIn, TdfOut
from .seeding import SeedLike, as_generator


class TdfSink(TdfModule):
    """Records all consumed samples together with their sample times."""

    def __init__(self, name: str, parent: Optional[Module] = None,
                 rate: int = 1):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate)
        self.samples: list[float] = []
        self.times: list[float] = []

    def processing(self):
        base = self.local_time.to_seconds()
        step = self.timestep.to_seconds() / self.inp.rate
        for k in range(self.inp.rate):
            self.samples.append(self.inp.read(k))
            self.times.append(base + k * step)

    def processing_block(self, n):
        if not self.inp.block_readable():
            # Object-mode stream: keep the raw payloads (a block read
            # would coerce them to float).
            self._scalar_fallback(n)
            return
        self.samples.extend(self.inp.read_block(n).tolist())
        self.times.extend(self.sample_times(n, self.inp.rate).tolist())

    def as_arrays(self):
        return np.asarray(self.times), np.asarray(self.samples)

    def checkpoint_state(self):
        return {"samples": list(self.samples),
                "times": list(self.times)}

    def restore_state(self, data):
        if data is not None:
            self.samples = list(data["samples"])
            self.times = list(data["times"])


class LinearAmp(TdfModule):
    """``out = gain * in + offset``."""

    def __init__(self, name: str, gain: float, offset: float = 0.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.gain = gain
        self.offset = offset

    def processing(self):
        self.out.write(self.gain * self.inp.read() + self.offset)

    def processing_block(self, n):
        self.out.write_block(
            self.gain * self.inp.read_block(n) + self.offset
        )


class SaturatingAmp(TdfModule):
    """Amplifier with output saturation.

    ``mode='hard'`` clips at the rails; ``mode='tanh'`` saturates
    smoothly (``limit * tanh(gain * x / limit)``), the usual behavioural
    model of a real amplifier's compression.
    """

    def __init__(self, name: str, gain: float, limit: float,
                 mode: str = "tanh",
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if mode not in ("hard", "tanh"):
            raise ValueError(f"unknown saturation mode {mode!r}")
        if limit <= 0:
            raise ValueError("saturation limit must be positive")
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.gain = gain
        self.limit = limit
        self.mode = mode

    def processing(self):
        raw = self.gain * self.inp.read()
        if self.mode == "hard":
            value = float(np.clip(raw, -self.limit, self.limit))
        else:
            value = self.limit * float(np.tanh(raw / self.limit))
        self.out.write(value)

    def processing_block(self, n):
        raw = self.gain * self.inp.read_block(n)
        if self.mode == "hard":
            self.out.write_block(np.clip(raw, -self.limit, self.limit))
        else:
            self.out.write_block(self.limit * np.tanh(raw / self.limit))


class Vga(TdfModule):
    """Variable-gain amplifier: ``out = in * 10**(gain_db/20)`` where the
    gain in dB is itself a TDF input."""

    def __init__(self, name: str, parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.gain_db = TdfIn("gain_db")
        self.out = TdfOut("out")

    def processing(self):
        # np.power (not the ** operator) so the scalar and block paths
        # share one libm entry point and stay bit-identical.
        gain = np.power(10.0, self.gain_db.read() / 20.0)
        self.out.write(gain * self.inp.read())

    def processing_block(self, n):
        gain = np.power(10.0, self.gain_db.read_block(n) / 20.0)
        self.out.write_block(gain * self.inp.read_block(n))


class Mixer(TdfModule):
    """Multiplying mixer with conversion gain."""

    def __init__(self, name: str, gain: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.rf = TdfIn("rf")
        self.lo = TdfIn("lo")
        self.out = TdfOut("out")
        self.gain = gain

    def processing(self):
        self.out.write(self.gain * self.rf.read() * self.lo.read())

    def processing_block(self, n):
        self.out.write_block(
            self.gain * self.rf.read_block(n) * self.lo.read_block(n)
        )


class QuadratureOscillator(TdfModule):
    """Emits cos (I) and sin (Q) of a running phase."""

    def __init__(self, name: str, frequency: float, phase: float = 0.0,
                 amplitude: float = 1.0,
                 quadrature_error: float = 0.0,
                 gain_imbalance: float = 0.0,
                 parent: Optional[Module] = None,
                 timestep: Optional[SimTime] = None):
        super().__init__(name, parent)
        self.i_out = TdfOut("i_out")
        self.q_out = TdfOut("q_out")
        self.frequency = frequency
        self.phase = phase
        self.amplitude = amplitude
        #: phase error [rad] applied to the Q rail only (I/Q imbalance).
        self.quadrature_error = quadrature_error
        #: relative amplitude error of the Q rail.
        self.gain_imbalance = gain_imbalance
        self._timestep = timestep

    def set_attributes(self):
        if self._timestep is not None:
            self.set_timestep(self._timestep)

    def processing(self):
        angle = (2 * np.pi * self.frequency * self.local_time.to_seconds()
                 + self.phase)
        self.i_out.write(self.amplitude * np.cos(angle))
        self.q_out.write(
            self.amplitude * (1.0 + self.gain_imbalance)
            * np.sin(angle + self.quadrature_error)
        )

    def processing_block(self, n):
        angle = (2 * np.pi * self.frequency * self.activation_times(n)
                 + self.phase)
        self.i_out.write_block(self.amplitude * np.cos(angle))
        self.q_out.write_block(
            self.amplitude * (1.0 + self.gain_imbalance)
            * np.sin(angle + self.quadrature_error)
        )


class Comparator(TdfModule):
    """Threshold comparator with optional hysteresis and input offset.

    Outputs ``high`` / ``low`` levels on a TDF port; with
    ``de_output=True``, also drives a boolean DE signal through a
    converter port (``self.de_out``).
    """

    def __init__(self, name: str, threshold: float = 0.0,
                 hysteresis: float = 0.0, offset: float = 0.0,
                 high: float = 1.0, low: float = 0.0,
                 de_output: bool = False,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.threshold = threshold
        self.hysteresis = hysteresis
        self.offset = offset
        self.high = high
        self.low = low
        self._state = False
        self.de_out = TdfDeOut("de_out") if de_output else None

    def processing(self):
        value = self.inp.read() + self.offset
        half = self.hysteresis / 2.0
        if self._state:
            if value < self.threshold - half:
                self._state = False
        else:
            if value > self.threshold + half:
                self._state = True
        level = self.high if self._state else self.low
        self.out.write(level)
        if self.de_out is not None:
            self.de_out.write(self._state)

    def checkpoint_state(self):
        return {"state": self._state}

    def restore_state(self, data):
        if data is not None:
            self._state = bool(data["state"])


class SampleHold(TdfModule):
    """Decimating sample-and-hold: samples every ``factor``-th input and
    holds it for ``factor`` output samples (aperture jitter optional)."""

    def __init__(self, name: str, factor: int = 1,
                 jitter_rms: float = 0.0, seed: SeedLike = 0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if factor < 1:
            raise ValueError("decimation factor must be >= 1")
        self.inp = TdfIn("inp", rate=factor)
        self.out = TdfOut("out", rate=factor)
        self.factor = factor
        self.jitter_rms = jitter_rms
        self._rng = as_generator(seed)
        self._held = 0.0

    def processing(self):
        samples = [self.inp.read(k) for k in range(self.factor)]
        if self.jitter_rms > 0.0 and self.factor > 1:
            # Aperture jitter: perturb the sampling instant by
            # interpolating between neighbouring samples.
            shift = self._rng.normal(0.0, self.jitter_rms)
            shift = float(np.clip(shift, 0.0, self.factor - 1.0))
            k = int(shift)
            frac = shift - k
            k2 = min(k + 1, self.factor - 1)
            self._held = samples[k] * (1 - frac) + samples[k2] * frac
        else:
            self._held = samples[0]
        for k in range(self.factor):
            self.out.write(self._held, k)

    def processing_block(self, n):
        if self.jitter_rms > 0.0 and self.factor > 1:
            # The jitter path draws one RNG sample per activation and
            # interpolates data-dependently; replay it sequentially.
            self._scalar_fallback(n)
            return
        frames = self.inp.read_block(n).reshape(n, self.factor)
        held = frames[:, 0]
        self.out.write_block(np.repeat(held, self.factor))
        self._held = float(held[-1])

    def checkpoint_state(self):
        return {"held": self._held,
                "rng": self._rng.bit_generator.state}

    def restore_state(self, data):
        if data is not None:
            self._held = float(data["held"])
            self._rng.bit_generator.state = data["rng"]


class DeadbandBlock(TdfModule):
    """Deadband nonlinearity: zero output within +/- width/2."""

    def __init__(self, name: str, width: float,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if width < 0:
            raise ValueError("deadband width must be non-negative")
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.half = width / 2.0

    def processing(self):
        value = self.inp.read()
        if value > self.half:
            self.out.write(value - self.half)
        elif value < -self.half:
            self.out.write(value + self.half)
        else:
            self.out.write(0.0)

    def processing_block(self, n):
        x = self.inp.read_block(n)
        self.out.write_block(np.where(
            x > self.half, x - self.half,
            np.where(x < -self.half, x + self.half, 0.0),
        ))


class MapBlock(TdfModule):
    """Applies an arbitrary unary function sample-by-sample."""

    def __init__(self, name: str, func: Callable[[float], float],
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.func = func

    def processing(self):
        self.out.write(float(self.func(self.inp.read())))

    def processing_block(self, n):
        # The callable stays scalar (arbitrary Python); batch the I/O.
        x = self.inp.read_block(n)
        self.out.write_block(np.fromiter(
            (float(self.func(float(v))) for v in x),
            dtype=float, count=len(x),
        ))


class Add2(TdfModule):
    """Two-input adder with weights."""

    def __init__(self, name: str, wa: float = 1.0, wb: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.a = TdfIn("a")
        self.b = TdfIn("b")
        self.out = TdfOut("out")
        self.wa = wa
        self.wb = wb

    def processing(self):
        self.out.write(self.wa * self.a.read() + self.wb * self.b.read())

    def processing_block(self, n):
        self.out.write_block(
            self.wa * self.a.read_block(n)
            + self.wb * self.b.read_block(n)
        )
