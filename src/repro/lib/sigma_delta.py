"""Sigma-delta (ΣΔ) modulators and decimation filters.

The "Σ∆ prefi" / "Σ∆ pofi" blocks of the paper's Figure 1 (the ADSL
codec's oversampled converters): first- and second-order single-bit
modulators as TDF modules, a CIC (sinc^K) decimator, and fast NumPy
behavioural equivalents used by the refinement experiment (E12) as the
highest abstraction level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut


class SigmaDelta1(TdfModule):
    """First-order single-bit ΣΔ modulator.

    Discrete-time loop: ``integ += (in - fb); out = sign(integ)``.
    Input must stay within ``(-full_scale, +full_scale)``.
    """

    def __init__(self, name: str, full_scale: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.full_scale = full_scale
        self._integrator = 0.0
        self._feedback = 0.0

    def processing(self):
        self._integrator += self.inp.read() - self._feedback
        bit = self.full_scale if self._integrator >= 0.0 \
            else -self.full_scale
        self._feedback = bit
        self.out.write(bit)

    def checkpoint_state(self):
        return {"integrator": self._integrator,
                "feedback": self._feedback}

    def restore_state(self, data):
        if data is not None:
            self._integrator = float(data["integrator"])
            self._feedback = float(data["feedback"])


class SigmaDelta2(TdfModule):
    """Second-order single-bit ΣΔ modulator (CIFB structure).

    ``i1 += in - fb;  i2 += i1 - fb;  out = sign(i2)``, with the classic
    0.5 inter-stage scaling for stability.
    """

    def __init__(self, name: str, full_scale: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.full_scale = full_scale
        self._i1 = 0.0
        self._i2 = 0.0
        self._feedback = 0.0

    def processing(self):
        value = self.inp.read()
        self._i1 += 0.5 * (value - self._feedback)
        self._i2 += 0.5 * (self._i1 - self._feedback)
        bit = self.full_scale if self._i2 >= 0.0 else -self.full_scale
        self._feedback = bit
        self.out.write(bit)

    def checkpoint_state(self):
        return {"i1": self._i1, "i2": self._i2,
                "feedback": self._feedback}

    def restore_state(self, data):
        if data is not None:
            self._i1 = float(data["i1"])
            self._i2 = float(data["i2"])
            self._feedback = float(data["feedback"])


class CicDecimator(TdfModule):
    """CIC (sinc^order) decimation filter.

    Consumes ``factor`` samples per activation, produces one.  The
    integrator/comb cascade has unity DC gain (normalized by
    ``factor**order``).
    """

    def __init__(self, name: str, factor: int, order: int = 2,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if factor < 2:
            raise ValueError("decimation factor must be >= 2")
        if order < 1:
            raise ValueError("CIC order must be >= 1")
        self.inp = TdfIn("inp", rate=factor)
        self.out = TdfOut("out")
        self.factor = factor
        self.order = order
        self._integrators = np.zeros(order)
        self._combs = np.zeros(order)
        self._gain = float(factor) ** order

    def processing(self):
        # Integrators run at the input rate.
        for k in range(self.factor):
            value = self.inp.read(k)
            for i in range(self.order):
                self._integrators[i] += value
                value = self._integrators[i]
        # Combs run at the output rate.
        value = self._integrators[-1]
        for i in range(self.order):
            delayed = self._combs[i]
            self._combs[i] = value
            value = value - delayed
        self.out.write(value / self._gain)

    def checkpoint_state(self):
        return {"integrators": self._integrators.tolist(),
                "combs": self._combs.tolist()}

    def restore_state(self, data):
        if data is not None:
            self._integrators = np.asarray(data["integrators"],
                                           dtype=float)
            self._combs = np.asarray(data["combs"], dtype=float)


# -- behavioural (array) models: the top abstraction level of E12 -------------


def sigma_delta1_bitstream(samples: np.ndarray,
                           full_scale: float = 1.0) -> np.ndarray:
    """NumPy behavioural model of :class:`SigmaDelta1`."""
    x = np.asarray(samples, dtype=float)
    bits = np.empty_like(x)
    integrator = 0.0
    feedback = 0.0
    for k, value in enumerate(x):
        integrator += value - feedback
        feedback = full_scale if integrator >= 0.0 else -full_scale
        bits[k] = feedback
    return bits


def sigma_delta2_bitstream(samples: np.ndarray,
                           full_scale: float = 1.0) -> np.ndarray:
    """NumPy behavioural model of :class:`SigmaDelta2`."""
    x = np.asarray(samples, dtype=float)
    bits = np.empty_like(x)
    i1 = i2 = feedback = 0.0
    for k, value in enumerate(x):
        i1 += 0.5 * (value - feedback)
        i2 += 0.5 * (i1 - feedback)
        feedback = full_scale if i2 >= 0.0 else -full_scale
        bits[k] = feedback
    return bits


def cic_decimate(bits: np.ndarray, factor: int,
                 order: int = 2) -> np.ndarray:
    """NumPy behavioural model of :class:`CicDecimator`."""
    x = np.asarray(bits, dtype=float)
    for _ in range(order):
        x = np.cumsum(x)
    x = x[factor - 1::factor]
    for _ in range(order):
        x = np.diff(x, prepend=0.0)
    return x / float(factor) ** order
