"""Digital filters: FIR design and filtering, biquad cascades, and
Butterworth IIR design via the bilinear transform — all implemented from
first principles (no scipy.signal), as library substrate for the digital
filter blocks of Figure 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut


# -- FIR design -----------------------------------------------------------------


def fir_lowpass(num_taps: int, cutoff: float, sample_rate: float,
                window_name: str = "hann") -> np.ndarray:
    """Windowed-sinc lowpass FIR taps (unity DC gain).

    ``cutoff`` is the -6 dB frequency in hertz.
    """
    if not 0.0 < cutoff < sample_rate / 2:
        raise ValueError("cutoff must lie inside (0, fs/2)")
    if num_taps < 3:
        raise ValueError("need at least 3 taps")
    fc = cutoff / sample_rate
    n = np.arange(num_taps) - (num_taps - 1) / 2.0
    taps = 2 * fc * np.sinc(2 * fc * n)
    from ..analysis.spectrum import window

    taps *= window(window_name, num_taps)
    return taps / np.sum(taps)


def fir_highpass(num_taps: int, cutoff: float, sample_rate: float,
                 window_name: str = "hann") -> np.ndarray:
    """Spectral inversion of the windowed-sinc lowpass."""
    if num_taps % 2 == 0:
        raise ValueError("highpass FIR needs an odd tap count")
    taps = -fir_lowpass(num_taps, cutoff, sample_rate, window_name)
    taps[(num_taps - 1) // 2] += 1.0
    return taps


def fir_bandpass(num_taps: int, low: float, high: float,
                 sample_rate: float,
                 window_name: str = "hann") -> np.ndarray:
    """Difference of two lowpass designs."""
    if not 0.0 < low < high < sample_rate / 2:
        raise ValueError("need 0 < low < high < fs/2")
    return (fir_lowpass(num_taps, high, sample_rate, window_name)
            - fir_lowpass(num_taps, low, sample_rate, window_name))


def fir_frequency_response(taps: np.ndarray, frequencies: np.ndarray,
                           sample_rate: float) -> np.ndarray:
    """Complex response H(e^{j*2*pi*f/fs})."""
    taps = np.asarray(taps, dtype=float)
    w = 2j * np.pi * np.asarray(frequencies, dtype=float) / sample_rate
    n = np.arange(len(taps))
    return np.exp(-np.outer(w, n)) @ taps


# -- biquads & Butterworth IIR -----------------------------------------------------


class Biquad:
    """One second-order IIR section, direct form II transposed.

    Coefficients follow the usual convention:
        y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
    """

    __slots__ = ("b0", "b1", "b2", "a1", "a2", "_z1", "_z2")

    def __init__(self, b0, b1, b2, a1, a2):
        self.b0, self.b1, self.b2 = float(b0), float(b1), float(b2)
        self.a1, self.a2 = float(a1), float(a2)
        self._z1 = 0.0
        self._z2 = 0.0

    def step(self, x: float) -> float:
        y = self.b0 * x + self._z1
        self._z1 = self.b1 * x - self.a1 * y + self._z2
        self._z2 = self.b2 * x - self.a2 * y
        return y

    def reset(self) -> None:
        self._z1 = self._z2 = 0.0

    def response(self, frequencies: np.ndarray,
                 sample_rate: float) -> np.ndarray:
        z = np.exp(2j * np.pi * np.asarray(frequencies, dtype=float)
                   / sample_rate)
        zi = 1.0 / z
        return ((self.b0 + self.b1 * zi + self.b2 * zi ** 2)
                / (1.0 + self.a1 * zi + self.a2 * zi ** 2))


def butterworth_lowpass_sections(order: int, cutoff: float,
                                 sample_rate: float) -> list[Biquad]:
    """Butterworth lowpass as a cascade of biquads via the bilinear
    transform with frequency pre-warping.

    Odd orders include one first-order section (implemented as a
    degenerate biquad).
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    if not 0.0 < cutoff < sample_rate / 2:
        raise ValueError("cutoff must lie inside (0, fs/2)")
    # Pre-warp the analog cutoff so the digital filter lands exactly.
    warped = 2.0 * sample_rate * np.tan(np.pi * cutoff / sample_rate)
    sections: list[Biquad] = []
    # Butterworth poles: s_k = warped * exp(j*(pi/2 + (2k+1)pi/(2N))).
    k2 = 2.0 * sample_rate
    for k in range(order // 2):
        theta = np.pi / 2 + (2 * k + 1) * np.pi / (2 * order)
        # Conjugate pole pair -> s^2 + 2*zeta*w*s + w^2 with
        # zeta = -cos(theta).
        zeta = -np.cos(theta)
        w = warped
        # Bilinear transform of w^2 / (s^2 + 2 zeta w s + w^2):
        a0 = k2 ** 2 + 2 * zeta * w * k2 + w ** 2
        b0 = w ** 2 / a0
        b1 = 2 * w ** 2 / a0
        b2 = w ** 2 / a0
        a1 = (2 * w ** 2 - 2 * k2 ** 2) / a0
        a2 = (k2 ** 2 - 2 * zeta * w * k2 + w ** 2) / a0
        sections.append(Biquad(b0, b1, b2, a1, a2))
    if order % 2:
        # First-order section w / (s + w).
        w = warped
        a0 = k2 + w
        sections.append(Biquad(w / a0, w / a0, 0.0, (w - k2) / a0, 0.0))
    return sections


def filter_samples(sections: Sequence[Biquad],
                   samples: np.ndarray) -> np.ndarray:
    """Run a biquad cascade over an array (stateful; resets first)."""
    for section in sections:
        section.reset()
    out = np.empty(len(samples))
    for k, x in enumerate(np.asarray(samples, dtype=float)):
        y = x
        for section in sections:
            y = section.step(y)
        out[k] = y
    return out


def cascade_response(sections: Sequence[Biquad],
                     frequencies: np.ndarray,
                     sample_rate: float) -> np.ndarray:
    result = np.ones(len(np.atleast_1d(frequencies)), dtype=complex)
    for section in sections:
        result *= section.response(frequencies, sample_rate)
    return result


# -- TDF filter modules -------------------------------------------------------------


class FirFilter(TdfModule):
    """Streaming FIR filter."""

    def __init__(self, name: str, taps: Sequence[float],
                 parent: Optional[Module] = None, rate: int = 1):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate)
        self.out = TdfOut("out", rate=rate)
        self.taps = np.asarray(taps, dtype=float)
        self._history = np.zeros(len(self.taps))

    def processing(self):
        for k in range(self.inp.rate):
            self._history = np.roll(self._history, 1)
            self._history[0] = self.inp.read(k)
            self.out.write(float(self.taps @ self._history), k)

    def processing_block(self, n):
        # Newest-first layout: ext[j] holds x[last - j], so the window
        # [x_t, x_{t-1}, ..., x_{t-L+1}] the scalar path keeps in
        # ``_history`` is the contiguous slice ext[m-1-t : m-1-t+L].
        # Each output is the same ``taps @ contiguous-window`` product
        # as scalar mode (identical values, identical BLAS call), so
        # results match bit-for-bit; the win is dropping the per-sample
        # np.roll allocation and port dispatch.
        taps = self.taps
        depth = len(taps)
        x = self.inp.read_block(n)
        m = len(x)
        ext = np.empty(m + depth - 1)
        ext[:m] = x[::-1]
        ext[m:] = self._history[:depth - 1]
        out = np.empty(m)
        for t in range(m):
            lo = m - 1 - t
            out[t] = taps @ ext[lo: lo + depth]
        self.out.write_block(out)
        self._history = ext[:depth].copy()

    def checkpoint_state(self):
        return {"history": self._history.tolist()}

    def restore_state(self, data):
        if data is not None:
            self._history = np.asarray(data["history"], dtype=float)


class IirFilter(TdfModule):
    """Streaming biquad-cascade IIR filter."""

    def __init__(self, name: str, sections: Sequence[Biquad],
                 parent: Optional[Module] = None, rate: int = 1):
        super().__init__(name, parent)
        self.inp = TdfIn("inp", rate=rate)
        self.out = TdfOut("out", rate=rate)
        self.sections = list(sections)

    def processing(self):
        for k in range(self.inp.rate):
            y = self.inp.read(k)
            for section in self.sections:
                y = section.step(y)
            self.out.write(y, k)

    def processing_block(self, n):
        # The biquad recurrence is sequential; batching the port I/O
        # around the same per-sample state updates keeps results
        # bit-identical while removing the dispatch overhead.
        x = self.inp.read_block(n)
        out = np.empty(len(x))
        sections = self.sections
        for j in range(len(x)):
            y = float(x[j])
            for section in sections:
                y = section.step(y)
            out[j] = y
        self.out.write_block(out)

    def checkpoint_state(self):
        return {"z": [(s._z1, s._z2) for s in self.sections]}

    def restore_state(self, data):
        if data is not None:
            for section, (z1, z2) in zip(self.sections, data["z"]):
                section._z1, section._z2 = float(z1), float(z2)
