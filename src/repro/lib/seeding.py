"""Deterministic random-stream management for the module library.

Campaign-style workloads (parameter sweeps, Monte Carlo — see
:mod:`repro.campaign`) need every run to draw its randomness from an
independent, reproducible stream: the same root seed must produce the
same per-run streams whether runs execute serially or fan out across
worker processes.  ``numpy.random.SeedSequence`` provides exactly that
via :meth:`~numpy.random.SeedSequence.spawn`; this module wraps it and
defines the ``SeedLike`` convention used across :mod:`repro.lib`:

every library module that consumes randomness accepts either an ``int``
seed (backwards compatible, hashed into a fresh ``Generator``), a
``numpy.random.SeedSequence``, or an already-constructed
``numpy.random.Generator`` (so a campaign worker can inject a spawned
stream shared between blocks).
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

#: Anything the library accepts as a source of randomness.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    * ``Generator`` — returned unchanged (the caller shares the stream);
    * ``SeedSequence`` — a fresh generator keyed by it;
    * ``int`` / ``None`` — a fresh ``default_rng(seed)``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(root_seed: Union[int, np.random.SeedSequence, None],
                         n: int) -> List[np.random.SeedSequence]:
    """``n`` independent child sequences of ``root_seed``.

    Children are keyed by *index*, not by creation order, so spawning is
    stable across processes: child ``k`` is the same stream no matter
    which worker asks for it.
    """
    if n < 0:
        raise ValueError("cannot spawn a negative number of sequences")
    root = (root_seed if isinstance(root_seed, np.random.SeedSequence)
            else np.random.SeedSequence(root_seed))
    return root.spawn(n)


def spawn_rngs(root_seed: Union[int, np.random.SeedSequence, None],
               n: int) -> List[np.random.Generator]:
    """``n`` independent generators derived from ``root_seed``."""
    return [np.random.default_rng(child)
            for child in spawn_seed_sequences(root_seed, n)]


def seed_to_int(sequence: np.random.SeedSequence) -> int:
    """A 64-bit integer digest of a seed sequence.

    Used by the campaign engine to embed a per-run seed in JSON records:
    ``default_rng(seed_to_int(child))`` is reproducible from the record
    alone, without re-spawning the whole tree.
    """
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
