"""Goertzel single-bin tone detection.

The classic line-card DSP primitive (DTMF and supervisory-tone
detection): a second-order recursion computing one DFT bin over a block
of N samples, far cheaper than an FFT when only a few frequencies
matter.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut


def goertzel_magnitude(samples: np.ndarray, frequency: float,
                       sample_rate: float) -> float:
    """Amplitude of the given frequency within the block.

    Normalized so a full block of ``A*sin(2*pi*f*t)`` with ``f`` on a
    bin returns approximately ``A``.
    """
    x = np.asarray(samples, dtype=float)
    n = len(x)
    k = frequency * n / sample_rate
    w = 2 * np.pi * k / n
    coeff = 2 * np.cos(w)
    s_prev = s_prev2 = 0.0
    for value in x:
        s = value + coeff * s_prev - s_prev2
        s_prev2 = s_prev
        s_prev = s
    power = s_prev2 ** 2 + s_prev ** 2 - coeff * s_prev * s_prev2
    return 2.0 * np.sqrt(max(power, 0.0)) / n


class GoertzelDetector(TdfModule):
    """Block-based tone detector.

    Consumes ``block_size`` samples per activation and emits one
    magnitude estimate of the target frequency per block; optionally a
    second output carries the thresholded present/absent decision.
    """

    def __init__(self, name: str, frequency: float, block_size: int,
                 threshold: Optional[float] = None,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if block_size < 8:
            raise ValueError("block size must be at least 8 samples")
        self.inp = TdfIn("inp", rate=block_size)
        self.magnitude = TdfOut("magnitude")
        self.detected = TdfOut("detected")
        self.frequency = frequency
        self.block_size = block_size
        self.threshold = threshold
        self._sample_rate: Optional[float] = None

    def initialize(self):
        self._sample_rate = self.inp.rate / self.timestep.to_seconds()

    def processing(self):
        block = np.fromiter(
            (self.inp.read(k) for k in range(self.block_size)),
            dtype=float, count=self.block_size,
        )
        magnitude = goertzel_magnitude(block, self.frequency,
                                       self._sample_rate)
        self.magnitude.write(magnitude)
        if self.threshold is not None:
            self.detected.write(1.0 if magnitude > self.threshold
                                else 0.0)
        else:
            self.detected.write(magnitude)
