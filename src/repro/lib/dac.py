"""Digital-to-analog converter models.

The switched-capacitor DAC mirrors the functional models of Bonnerud's
module library (seed work [2]): binary-weighted capacitors with random
mismatch produce code-dependent (INL/DNL) errors, and a finite settling
factor models incomplete charge transfer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.module import Module
from ..tdf.module import TdfModule
from ..tdf.signal import TdfIn, TdfOut
from .seeding import SeedLike, as_generator


class IdealDac(TdfModule):
    """Maps integer codes in ``[0, 2**bits - 1]`` to analog levels in
    ``[-full_scale, +full_scale)``."""

    def __init__(self, name: str, bits: int, full_scale: float = 1.0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.bits = bits
        self.full_scale = full_scale
        self.step = 2.0 * full_scale / 2 ** bits

    def processing(self):
        code = int(self.inp.read())
        code = int(np.clip(code, 0, 2 ** self.bits - 1))
        self.out.write(-self.full_scale + (code + 0.5) * self.step)

    def processing_block(self, n):
        # int() truncates toward zero; np.trunc matches (np.floor
        # would not, for negative inputs).
        codes = np.trunc(self.inp.read_block(n)).astype(np.int64)
        codes = np.clip(codes, 0, 2 ** self.bits - 1)
        self.out.write_block(
            -self.full_scale + (codes + 0.5) * self.step
        )


class SwitchedCapDac(TdfModule):
    """Binary-weighted switched-capacitor DAC with mismatch and settling.

    Each bit ``k`` has nominal weight ``2**k`` perturbed by a Gaussian
    relative mismatch; the output slews toward the target with a
    per-sample settling factor ``alpha`` (1.0 = complete settling).
    """

    def __init__(self, name: str, bits: int, full_scale: float = 1.0,
                 mismatch_rms: float = 0.0, settling: float = 1.0,
                 seed: SeedLike = 0,
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        if not 0.0 < settling <= 1.0:
            raise ValueError("settling must lie in (0, 1]")
        self.inp = TdfIn("inp")
        self.out = TdfOut("out")
        self.bits = bits
        self.full_scale = full_scale
        self.settling = settling
        rng = as_generator(seed)
        nominal = 2.0 ** np.arange(bits)
        if mismatch_rms > 0.0:
            # Mismatch scales with 1/sqrt(unit count): bigger caps match
            # better.
            sigma = mismatch_rms / np.sqrt(nominal)
            self.weights = nominal * (1.0 + rng.normal(0.0, 1.0, bits)
                                      * sigma)
        else:
            self.weights = nominal
        self.total = float(np.sum(self.weights))
        self._state = 0.0

    def level(self, code: int) -> float:
        """Static transfer: the settled output for a given code."""
        code = int(np.clip(code, 0, 2 ** self.bits - 1))
        acc = 0.0
        for k in range(self.bits):
            if (code >> k) & 1:
                acc += self.weights[k]
        return -self.full_scale + 2.0 * self.full_scale * acc / self.total

    def processing(self):
        target = self.level(int(self.inp.read()))
        self._state += self.settling * (target - self._state)
        self.out.write(self._state)

    def processing_block(self, n):
        codes = np.clip(
            np.trunc(self.inp.read_block(n)).astype(np.int64),
            0, 2 ** self.bits - 1,
        )
        # Accumulate bit weights in the same LSB-first order as
        # level()'s loop (adding 0.0 for clear bits is a float no-op).
        acc = np.zeros(len(codes))
        for k in range(self.bits):
            acc += np.where((codes >> k) & 1, self.weights[k], 0.0)
        targets = (-self.full_scale
                   + 2.0 * self.full_scale * acc / self.total)
        # The settling recurrence is sequential by nature; replaying it
        # per sample (same ops, same order) keeps bit-identity.
        out = np.empty(len(codes))
        state = self._state
        for j in range(len(codes)):
            state += self.settling * (float(targets[j]) - state)
            out[j] = state
        self._state = state
        self.out.write_block(out)

    def checkpoint_state(self):
        return {"state": self._state}

    def restore_state(self, data):
        if data is not None:
            self._state = float(data["state"])

    def inl(self) -> np.ndarray:
        """Integral nonlinearity (in LSB) over all codes."""
        codes = np.arange(2 ** self.bits)
        actual = np.array([self.level(int(c)) for c in codes])
        step = 2.0 * self.full_scale / 2 ** self.bits
        # Endpoint-fit line through first and last level.
        fit = actual[0] + (actual[-1] - actual[0]) * codes / (len(codes) - 1)
        return (actual - fit) / step
