"""Metrics registry: counters, gauges and histograms with stable names.

The registry is the *numerical* half of the telemetry subsystem (the
tracer being the temporal half): cheap monotonic counters (solver
steps, tier escalations, converter handoffs), last-value gauges
(buffer occupancy, ladder depth), and fixed-bucket histograms (batch
sizes, events per delta) that support approximate quantiles without
retaining samples.

Metric identity is ``name`` plus an optional, sorted ``labels`` mapping
— ``registry.counter("solver.steps", module="top.rc")`` — rendered as
``solver.steps[module=top.rc]`` in dumps.  **Metric names are a
stability contract**: names listed in ``docs/TUTORIAL.md`` §9 are only
extended, never renamed or re-unitized, so dashboards and campaign
aggregations survive upgrades.

Hot-path cost: ``Counter.inc`` is one float add; ``Histogram.observe``
is one ``bisect`` plus three float ops.  Instrument sites hold direct
references to the metric objects (fetched once at elaboration), never
re-resolving names per event.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds: powers of two cover batch
#: sizes, iteration counts and queue depths over 6 decades.
DEFAULT_BOUNDS = tuple(float(2 ** k) for k in range(0, 21))

#: Exponential (power-of-2) bounds for *latency* histograms: ~1 ms up
#: to 64 s.  :data:`DEFAULT_BOUNDS` starts at 1.0, which collapses
#: every sub-second latency into one bucket; wall-clock quantities
#: (``job.wait_seconds``, ``job.run_seconds``, per-point run times)
#: should use these instead.
LATENCY_BOUNDS = tuple(2.0 ** k for k in range(-10, 7))


def metric_key(name: str, labels: Dict[str, Any]) -> str:
    """Canonical dump key: ``name`` or ``name[k1=v1,k2=v2]``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}[{inner}]"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-written value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything beyond the last edge.  Quantiles interpolate
    within the winning bucket, which is accurate enough for the p50 /
    p95 summaries the terminal exporter prints.
    """

    __slots__ = ("bounds", "buckets", "count", "total", "minimum",
                 "maximum")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BOUNDS):
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        self.buckets[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (0..1) from the bucket counts."""
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                hi = (self.bounds[index] if index < len(self.bounds)
                      else self.maximum)
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = min(hi, self.maximum)
                lo = max(min(lo, hi), self.minimum if index == 0 else lo)
                fraction = (target - (cumulative - bucket_count)) \
                    / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
        return self.maximum

    def to_dict(self) -> Dict[str, Any]:
        # ``bounds``/``buckets`` make the dump *mergeable*: the fleet
        # aggregator (repro.observe.fleet) bucket-merges histograms
        # from many worker registries into one cluster-wide view.
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named metric store; one per :class:`~repro.observe.Telemetry`.

    Accessors are get-or-create and memoized by ``(name, labels)``;
    re-requesting a metric with a mismatched type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, labels: Dict[str, Any], factory):
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not {factory.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str, *,
                  bounds: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        """Get-or-create a histogram.  ``bounds`` (used only on first
        creation — the first registration wins) selects the bucket
        edges, e.g. :data:`LATENCY_BOUNDS` for wall-clock metrics."""
        key = metric_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(bounds if bounds is not None
                               else DEFAULT_BOUNDS)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(metric).__name__}, not Histogram")
        return metric

    # -- bulk access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, key: str) -> bool:
        return key in self._metrics

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The metric registered under ``(name, labels)``, or ``None``
        — a read-only lookup that never creates."""
        return self._metrics.get(metric_key(name, labels))

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def update_scalars(self, values: Dict[str, float]) -> None:
        """Install a flat ``{key: number}`` mapping as gauges (used to
        merge harvested simulator state into the registry dump)."""
        for key, value in values.items():
            metric = self._metrics.get(key)
            if metric is None:
                metric = Gauge()
                self._metrics[key] = metric
            if isinstance(metric, Gauge):
                metric.set(value)
            elif isinstance(metric, Counter):
                metric.value = float(value)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dump: ``{"counters": {...}, "gauges": {...},
        "histograms": {...}}`` keyed by the canonical metric key."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Any] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[key] = metric.value
            else:
                histograms[key] = metric.to_dict()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def scalars(self) -> Dict[str, float]:
        """Flat ``{key: number}`` view (histograms contribute their
        count/sum/p95), convenient for campaign record snapshots."""
        flat: Dict[str, float] = {}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, (Counter, Gauge)):
                flat[key] = metric.value
            else:
                flat[f"{key}.count"] = float(metric.count)
                flat[f"{key}.sum"] = float(metric.total)
                flat[f"{key}.p95"] = float(metric.quantile(0.95))
        return flat


def find_non_finite(metrics_dump: Dict[str, Any],
                    prefix: str = "") -> List[str]:
    """Keys in a :meth:`MetricsRegistry.to_dict`-shaped mapping whose
    values are NaN/Inf — the CI artifact check fails on any hit."""
    import math

    bad: List[str] = []

    def walk(node: Any, path: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{path}.{key}" if path else str(key))
        elif isinstance(node, float) and not math.isfinite(node):
            bad.append(path)

    walk(metrics_dump, prefix)
    return bad
