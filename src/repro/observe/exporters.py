"""Telemetry exporters: Chrome trace JSON, structured JSONL, summaries.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Trace Event Format understood by
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: closed
  spans become complete ``"X"`` events, instants become ``"i"``, and
  each tracer track becomes one named thread.  Spans still open at
  export time are emitted as unmatched ``"B"`` events so the validator
  can flag them.
* :func:`write_trace_jsonl` / :func:`write_metrics_json` — structured
  records for ad-hoc scripting (one JSON object per line / one
  registry dump).
* :func:`summarize` — the terminal view printed by
  ``python -m repro.observe summary``.

:func:`validate_chrome_trace` is the structural checker behind
``python -m repro.observe check`` and the test-suite acceptance
criteria: every ``"B"`` needs a matching ``"E"`` on the same track,
``"X"`` events need non-negative durations and per-track monotonic
timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, TextIO

from .metrics import MetricsRegistry, find_non_finite
from .tracer import INSTANT, SPAN, Tracer

#: trace-event timestamps are microseconds.
_US = 1e6


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for one tracer (sorted by timestamp)."""
    track_ids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []

    def tid(track: str) -> int:
        if track not in track_ids:
            track_ids[track] = len(track_ids) + 1
        return track_ids[track]

    body: List[Dict[str, Any]] = []
    for kind, name, track, start, duration, attrs in tracer.events:
        event: Dict[str, Any] = {
            "name": name,
            "pid": 1,
            "tid": tid(track),
            "ts": start * _US,
        }
        if attrs:
            event["args"] = attrs
        if kind == SPAN:
            event["ph"] = "X"
            event["dur"] = max(duration, 0.0) * _US
        elif kind == INSTANT:
            event["ph"] = "i"
            event["s"] = "t"
        body.append(event)
    # Spans never closed: emit begin-only events so the structural
    # validator (and Perfetto's own UI) makes the bug visible.
    for span in tracer._open_spans.values():
        body.append({
            "name": span.name, "ph": "B", "pid": 1,
            "tid": tid(span.track),
            "ts": (span.start - tracer.epoch) * _US,
        })
    body.sort(key=lambda e: (e["tid"], e["ts"]))
    for track, track_id in track_ids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1,
            "tid": track_id, "args": {"name": track},
        })
    events.extend(body)
    return events


def write_chrome_trace(tracer: Tracer, stream: TextIO) -> None:
    json.dump({
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.observe",
                      "dropped_events": tracer.dropped},
    }, stream)
    stream.write("\n")


def write_trace_jsonl(tracer: Tracer, stream: TextIO) -> None:
    """One JSON object per event: ``{"kind", "name", "track", "ts",
    "dur", "attrs"}`` with times in seconds since the tracer epoch."""
    for kind, name, track, start, duration, attrs in tracer.events:
        record = {"kind": kind, "name": name, "track": track,
                  "ts": start, "dur": duration}
        if attrs:
            record["attrs"] = attrs
        stream.write(json.dumps(record, default=str) + "\n")


def write_metrics_json(registry: MetricsRegistry, stream: TextIO,
                       extra: Optional[Dict[str, float]] = None) -> None:
    """Registry dump plus an optional flat ``extra`` scalar section
    (the simulator's harvested snapshot)."""
    dump = registry.to_dict()
    if extra:
        scalars = dump.setdefault("gauges", {})
        for key, value in extra.items():
            scalars.setdefault(key, value)
    json.dump(dump, stream, indent=2, sort_keys=True)
    stream.write("\n")


# -- validation (CI artifact check + tests) ---------------------------------


def validate_chrome_trace(payload: Any) -> List[str]:
    """Structural problems in a Chrome trace payload (empty = valid).

    Checks: top-level shape, matching ``B``/``E`` pairs per track,
    complete ``X`` events with ``dur >= 0``, and monotonically
    non-decreasing ``ts`` per track.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        return ["payload is not a {'traceEvents': [...]} object"]
    open_depth: Dict[Any, List[str]] = {}
    last_ts: Dict[Any, float] = {}
    for position, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            problems.append(f"event #{position} is not an object")
            continue
        phase = event.get("ph")
        track = (event.get("pid"), event.get("tid"))
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"event #{position} has no numeric ts")
            continue
        if ts < last_ts.get(track, float("-inf")):
            problems.append(
                f"event #{position} ({event.get('name')!r}): ts moves "
                f"backwards on track {track}"
            )
        last_ts[track] = ts
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append(
                    f"event #{position} ({event.get('name')!r}): X "
                    "event without non-negative dur"
                )
        elif phase == "B":
            open_depth.setdefault(track, []).append(
                str(event.get("name")))
        elif phase == "E":
            stack = open_depth.get(track)
            if not stack:
                problems.append(
                    f"event #{position}: E without matching B on "
                    f"track {track}"
                )
            else:
                stack.pop()
        elif phase == "i":
            pass
        else:
            problems.append(
                f"event #{position}: unknown phase {phase!r}"
            )
    for track, stack in open_depth.items():
        for name in stack:
            problems.append(
                f"unclosed span {name!r} on track {track}"
            )
    return problems


def validate_metrics(metrics_dump: Any) -> List[str]:
    """Problems in a metrics dump: non-mapping payload or any
    NaN/Inf value anywhere in it."""
    if not isinstance(metrics_dump, dict):
        return ["metrics payload is not an object"]
    return [f"non-finite metric value at {path}"
            for path in find_non_finite(metrics_dump)]


# -- terminal summary -------------------------------------------------------


def summarize(tracer: Optional[Tracer],
              registry: Optional[MetricsRegistry],
              extra: Optional[Dict[str, float]] = None,
              top: int = 12) -> str:
    """Human-readable digest of one run's telemetry."""
    lines: List[str] = []
    if tracer is not None and tracer.events:
        totals: Dict[str, List[float]] = {}
        for kind, name, _track, _ts, duration, _attrs in tracer.events:
            if kind == SPAN:
                bucket = totals.setdefault(name, [0.0, 0.0])
                bucket[0] += 1
                bucket[1] += duration
        lines.append("spans (by total wall time):")
        lines.append(f"  {'name':<32} {'count':>9} {'total_ms':>10} "
                     f"{'mean_us':>9}")
        ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])
        for name, (count, total) in ranked[:top]:
            lines.append(
                f"  {name:<32} {int(count):>9} {total * 1e3:>10.2f} "
                f"{total / count * 1e6:>9.1f}"
            )
        unclosed = tracer.open_spans()
        if unclosed:
            lines.append(f"  UNCLOSED spans: {unclosed}")
        if tracer.dropped:
            lines.append(f"  dropped events: {tracer.dropped}")
    summary_from_dump = summarize_metrics_dump(
        registry.to_dict() if registry is not None else {}, extra)
    if summary_from_dump:
        if lines:
            lines.append("")
        lines.append(summary_from_dump)
    return "\n".join(lines) if lines else "no telemetry recorded"


def summarize_metrics_dump(dump: Dict[str, Any],
                           extra: Optional[Dict[str, float]] = None
                           ) -> str:
    lines: List[str] = []
    counters = dict(dump.get("counters") or {})
    gauges = dict(dump.get("gauges") or {})
    if extra:
        for key, value in extra.items():
            gauges.setdefault(key, value)
    histograms = dump.get("histograms") or {}
    if counters:
        lines.append("counters:")
        for key in sorted(counters):
            lines.append(f"  {key:<48} {counters[key]:>14g}")
    if gauges:
        lines.append("gauges:")
        for key in sorted(gauges):
            lines.append(f"  {key:<48} {gauges[key]:>14g}")
    if histograms:
        lines.append("histograms:")
        lines.append(f"  {'name':<40} {'count':>8} {'mean':>10} "
                     f"{'p95':>10} {'max':>10}")
        for key in sorted(histograms):
            h = histograms[key]
            maximum = h.get("max")
            lines.append(
                f"  {key:<40} {h.get('count', 0):>8} "
                f"{h.get('mean', 0.0):>10.3g} "
                f"{h.get('p95', 0.0):>10.3g} "
                f"{maximum if maximum is not None else 0:>10.3g}"
            )
    return "\n".join(lines)
