"""`repro.observe` — unified simulation telemetry.

The paper's design objectives demand that the layered kernel (DE ↔ TDF
↔ CT/ELN synchronization) be *inspectable*: arguing schedule validity,
solver accuracy, or sync consistency requires seeing what the kernel
actually did.  This package is the common event model those arguments
stand on:

* :class:`~repro.observe.tracer.Tracer` — span/instant recording onto
  per-component tracks (kernel, clusters, solvers, elaboration);
* :class:`~repro.observe.metrics.MetricsRegistry` — counters, gauges
  and histograms with stable names (see ``docs/TUTORIAL.md`` §9 for
  the name contract);
* exporters — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), structured JSONL, and the terminal summary
  behind ``python -m repro.observe``.

Everything hangs off one :class:`Telemetry` hub, installed with
``Simulator(top, observe=True)`` (or an explicit ``Telemetry``
instance).  When no hub is installed the instrumented layers skip
their guards entirely — the disabled path costs one ``is None`` test
per cluster wake-up, nothing per sample.

Pre-existing ad-hoc channels — ``Simulator.enable_profiling``,
``ResilientTransientSolver.tier_log``, ``HealthMonitor`` statistics —
remain as compatibility shims and additionally feed this event bus
when a hub is present.
"""

from __future__ import annotations

import contextlib
import json
from pathlib import Path
from typing import Any, Dict, Optional

from .exporters import (
    chrome_trace_events,
    summarize,
    summarize_metrics_dump,
    validate_chrome_trace,
    validate_metrics,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)
from .fleet import (
    MetricsAggregator,
    TraceContext,
    prometheus_text,
    stitch_job_trace,
    telemetry_payload,
    validate_prometheus_text,
)
from .metrics import (
    LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    find_non_finite,
    metric_key,
)
from .tracer import DEFAULT_MAX_EVENTS, NULL_SPAN, SpanHandle, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BOUNDS",
    "MetricsAggregator",
    "MetricsRegistry",
    "SpanHandle",
    "Telemetry",
    "TraceContext",
    "Tracer",
    "chrome_trace_events",
    "current",
    "find_non_finite",
    "metric_key",
    "prometheus_text",
    "stitch_job_trace",
    "summarize",
    "summarize_metrics_dump",
    "telemetry_payload",
    "validate_chrome_trace",
    "validate_metrics",
    "validate_prometheus_text",
    "write_chrome_trace",
    "write_metrics_json",
    "write_trace_jsonl",
]

#: span detail levels: ``"normal"`` records cluster wake-ups, kernel
#: run segments, elaboration phases and resilience escalations;
#: ``"fine"`` adds per-solver-advance and per-delta-cycle spans.
DETAIL_LEVELS = ("normal", "fine")


class Telemetry:
    """One run's telemetry hub: a tracer plus a metrics registry.

    Parameters
    ----------
    spans:
        Record spans/instants (``False`` keeps metrics only; span
        call sites degrade to shared no-ops).
    detail:
        ``"normal"`` or ``"fine"`` — see :data:`DETAIL_LEVELS`.
    max_events:
        Tracer buffer cap; overflowing events are counted in
        ``tracer.dropped`` rather than recorded.
    """

    def __init__(self, spans: bool = True, detail: str = "normal",
                 max_events: int = DEFAULT_MAX_EVENTS):
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"detail must be one of {DETAIL_LEVELS}; got {detail!r}"
            )
        self.tracer = Tracer(enabled=spans, max_events=max_events)
        self.metrics = MetricsRegistry()
        self.detail = detail

    @property
    def spans(self) -> bool:
        return self.tracer.enabled

    @property
    def fine(self) -> bool:
        return self.detail == "fine" and self.tracer.enabled

    # -- construction shorthand ---------------------------------------------

    @classmethod
    def coerce(cls, value: Any) -> Optional["Telemetry"]:
        """Normalize ``Simulator(observe=...)`` arguments.

        ``None``/``False`` → no telemetry; ``True``/``"on"`` → spans at
        normal detail; ``"metrics"`` → registry only (no spans);
        ``"fine"`` → fine-grained spans; a :class:`Telemetry` instance
        passes through (sharing one hub across simulators is allowed —
        e.g. a restore-from-checkpoint pair).
        """
        if value is None or value is False:
            return None
        if isinstance(value, Telemetry):
            return value
        if value is True or value == "on":
            return cls()
        if value == "metrics":
            return cls(spans=False)
        if value == "fine":
            return cls(detail="fine")
        raise ValueError(
            "observe must be None/False, True/'on', 'metrics', 'fine' "
            f"or a Telemetry instance; got {value!r}"
        )

    # -- export --------------------------------------------------------------

    def export(self, directory,
               extra_metrics: Optional[Dict[str, float]] = None
               ) -> Dict[str, Path]:
        """Write ``trace.json`` (Chrome/Perfetto), ``trace.jsonl`` and
        ``metrics.json`` under ``directory``; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "chrome": directory / "trace.json",
            "jsonl": directory / "trace.jsonl",
            "metrics": directory / "metrics.json",
        }
        # A truncated trace must be *visible* downstream, not just in
        # the in-memory tracer: mirror the drop count into the metrics
        # dump so `repro.observe check` and fleet aggregation see it.
        if self.tracer.dropped:
            self.metrics.counter("trace.events.dropped").value = \
                float(self.tracer.dropped)
        with open(paths["chrome"], "w", encoding="utf-8") as handle:
            write_chrome_trace(self.tracer, handle)
        with open(paths["jsonl"], "w", encoding="utf-8") as handle:
            write_trace_jsonl(self.tracer, handle)
        with open(paths["metrics"], "w", encoding="utf-8") as handle:
            write_metrics_json(self.metrics, handle, extra_metrics)
        return paths

    def summary(self, extra: Optional[Dict[str, float]] = None) -> str:
        return summarize(self.tracer, self.metrics, extra)

    def chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace payload as a Python object (for tests)."""
        return json.loads(_dumps_chrome(self))

    # -- ambient access ------------------------------------------------------

    @contextlib.contextmanager
    def ambient(self):
        """Install this hub as the process-ambient telemetry.

        Free functions with no path to a simulator (e.g. the homotopy
        ladders in :mod:`repro.resilience.homotopy`) report through
        :func:`current`; the :class:`~repro.core.Simulator` wraps
        ``elaborate()``/``run()`` in this context.
        """
        global _CURRENT
        previous = _CURRENT
        _CURRENT = self
        try:
            yield self
        finally:
            _CURRENT = previous


_CURRENT: Optional[Telemetry] = None


def current() -> Optional[Telemetry]:
    """The ambient :class:`Telemetry` hub, or ``None``."""
    return _CURRENT


def _dumps_chrome(telemetry: Telemetry) -> str:
    import io

    buffer = io.StringIO()
    write_chrome_trace(telemetry.tracer, buffer)
    return buffer.getvalue()
