"""Fleet-wide observability: trace context, stitching, aggregation.

:mod:`repro.observe` makes *one process*' simulation inspectable; this
module makes the *fleet* inspectable.  The campaign service shards one
job across a local fork pool and any number of remote pull-workers —
without these primitives a span dies at the fork boundary and a remote
worker's metrics never reach the operator.  Four pieces close the gap:

* :class:`TraceContext` — a W3C-``traceparent``-style context
  (``00-<32 hex trace id>-<16 hex span id>-<2 hex flags>``) minted per
  job, re-derived per chunk, and carried through HTTP headers and the
  fork/pickle boundary so every process records against one trace id;
* :func:`telemetry_payload` — the size-capped, JSON-safe envelope a
  worker ships back with its chunk results: its spans (relative to a
  wall-clock ``epoch_unix`` so processes with different
  ``perf_counter`` epochs can be aligned), its metrics registry dump,
  and how many events it had to drop;
* :func:`stitch_job_trace` — assembles those segments plus the
  server's own queue-wait / lease / cache-hit events into **one**
  Perfetto-loadable Chrome trace with one process track group per
  contributing process, valid under
  :func:`repro.observe.validate_chrome_trace`;
* :class:`MetricsAggregator` + :func:`prometheus_text` — merge worker
  registry snapshots into a cluster view (counters sum, gauges
  last-write, histograms bucket-merge) and render it in the Prometheus
  text exposition format (``GET /metrics``), validated by
  :func:`validate_prometheus_text`.

Clock model: spans are recorded against each process' own
``perf_counter`` epoch; stitching re-bases every segment onto the wall
clock via its ``epoch_unix``.  On one host this is exact to clock
resolution; across hosts it inherits NTP-level skew — acceptable for
the visualization and accounting this feeds (nothing numerical keys on
stitched timestamps).
"""

from __future__ import annotations

import os
import re
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .metrics import Histogram, metric_key  # noqa: F401  (re-export)
from .tracer import INSTANT, SPAN

#: Per-segment span cap: a worker ships at most this many events per
#: chunk; anything beyond is counted in the segment's
#: ``spans_dropped`` (and surfaced in the stitched trace's
#: ``otherData.dropped_events``), never silently lost.
DEFAULT_SEGMENT_SPANS = 4000


# ---------------------------------------------------------------------------
# trace context (W3C traceparent style)
# ---------------------------------------------------------------------------

_TRACEPARENT_RE = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})-"
    r"(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$")


@dataclass(frozen=True)
class TraceContext:
    """One position in a distributed trace.

    ``trace_id`` identifies the whole job-level trace (32 hex chars);
    ``span_id`` identifies the current hop (16 hex chars).  The wire
    form is the W3C Trace Context ``traceparent`` header,
    ``00-{trace_id}-{span_id}-{flags}``, so any standard tooling that
    understands traceparent can follow the service's traces.
    """

    trace_id: str
    span_id: str
    flags: str = "01"

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (new trace id, new span id)."""
        return cls(trace_id=uuid.uuid4().hex,
                   span_id=os.urandom(8).hex())

    def child(self) -> "TraceContext":
        """Same trace, new span id — one per chunk dispatch."""
        return TraceContext(trace_id=self.trace_id,
                            span_id=os.urandom(8).hex(),
                            flags=self.flags)

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-{self.flags}"

    @classmethod
    def parse(cls, header: str) -> "TraceContext":
        """Parse a ``traceparent`` header; raises ``ValueError`` on
        malformed input (wrong shape, all-zero ids)."""
        match = _TRACEPARENT_RE.match((header or "").strip().lower())
        if match is None:
            raise ValueError(f"malformed traceparent: {header!r}")
        if match["trace_id"] == "0" * 32 \
                or match["span_id"] == "0" * 16:
            raise ValueError(f"all-zero trace/span id: {header!r}")
        return cls(trace_id=match["trace_id"],
                   span_id=match["span_id"], flags=match["flags"])


# ---------------------------------------------------------------------------
# worker telemetry segments
# ---------------------------------------------------------------------------


def telemetry_payload(telemetry, *, worker: str,
                      traceparent: Optional[str] = None,
                      max_spans: int = DEFAULT_SEGMENT_SPANS
                      ) -> Dict[str, Any]:
    """The JSON-safe telemetry envelope one executor ships back.

    ``epoch_unix`` is the wall-clock instant of the tracer's
    ``perf_counter`` epoch, so the receiver can re-base this segment's
    relative timestamps onto a shared timeline.  Spans beyond
    ``max_spans`` are dropped *and counted* — a truncated segment is
    visible, never silent.
    """
    tracer = telemetry.tracer
    events = tracer.events
    kept = events if len(events) <= max_spans else events[:max_spans]
    spans = [[kind, name, track, start, duration, attrs]
             for kind, name, track, start, duration, attrs in kept]
    return {
        "traceparent": traceparent,
        "worker": str(worker),
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "epoch_unix": time.time() - (time.perf_counter()
                                     - tracer.epoch),
        "spans": spans,
        "spans_dropped": tracer.dropped + (len(events) - len(kept)),
        "metrics": telemetry.metrics.to_dict(),
    }


def coerce_segment(payload: Any,
                   max_spans: int = DEFAULT_SEGMENT_SPANS
                   ) -> Optional[Dict[str, Any]]:
    """Normalize an untrusted segment from the wire (``None`` when it
    is not usable).  Enforces the span cap server-side — a misbehaving
    worker cannot balloon a job's stitched trace."""
    if not isinstance(payload, dict):
        return None
    spans = payload.get("spans")
    if not isinstance(spans, list):
        spans = []
    dropped = payload.get("spans_dropped")
    dropped = int(dropped) if isinstance(dropped, (int, float)) else 0
    if len(spans) > max_spans:
        dropped += len(spans) - max_spans
        spans = spans[:max_spans]
    try:
        epoch = float(payload.get("epoch_unix") or 0.0)
    except (TypeError, ValueError):
        epoch = 0.0
    metrics = payload.get("metrics")
    return {
        "traceparent": payload.get("traceparent"),
        "worker": str(payload.get("worker") or "?"),
        "pid": payload.get("pid"),
        "host": str(payload.get("host") or "?"),
        "epoch_unix": epoch,
        "spans": spans,
        "spans_dropped": dropped,
        "metrics": metrics if isinstance(metrics, dict) else None,
    }


# ---------------------------------------------------------------------------
# trace stitching
# ---------------------------------------------------------------------------


def stitch_job_trace(traceparent: Optional[str],
                     segments: Iterable[Dict[str, Any]],
                     producer: str = "repro.observe.fleet"
                     ) -> Dict[str, Any]:
    """One Chrome/Perfetto trace payload from many process segments.

    Each segment (see :func:`telemetry_payload`) becomes one Perfetto
    *process* (named ``worker (host:pid)``); each of its tracks
    becomes one named thread.  Timestamps are re-based onto a common
    epoch (the earliest event across all segments), sorted per track,
    and durations clamped non-negative, so the result always passes
    :func:`repro.observe.validate_chrome_trace`.
    """
    normalized: List[Tuple[Dict[str, Any], float, List[Any]]] = []
    dropped = 0
    for raw in segments:
        segment = coerce_segment(raw)
        if segment is None:
            dropped += 1
            continue
        dropped += segment["spans_dropped"]
        normalized.append((segment, segment["epoch_unix"],
                           segment["spans"]))

    epoch0: Optional[float] = None
    for _segment, epoch, spans in normalized:
        for event in spans:
            try:
                absolute = epoch + float(event[3])
            except (TypeError, ValueError, IndexError):
                continue
            if epoch0 is None or absolute < epoch0:
                epoch0 = absolute
    if epoch0 is None:
        epoch0 = 0.0

    metadata: List[Dict[str, Any]] = []
    body: List[Dict[str, Any]] = []
    pid_of: Dict[Tuple[str, Any, str], int] = {}
    tid_of: Dict[int, Dict[str, int]] = {}
    for segment, epoch, spans in normalized:
        process = (segment["host"], segment["pid"], segment["worker"])
        pid = pid_of.get(process)
        if pid is None:
            pid = len(pid_of) + 1
            pid_of[process] = pid
            tid_of[pid] = {}
            metadata.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "tid": 0,
                "args": {"name": f"{process[2]} "
                                 f"({process[0]}:{process[1]})"},
            })
        tracks = tid_of[pid]
        for event in spans:
            try:
                kind = event[0]
                name = str(event[1])
                track = str(event[2])
                start = float(event[3])
                duration = float(event[4])
            except (TypeError, ValueError, IndexError):
                dropped += 1
                continue
            attrs = event[5] if len(event) > 5 else None
            tid = tracks.get(track)
            if tid is None:
                tid = len(tracks) + 1
                tracks[track] = tid
                metadata.append({
                    "name": "thread_name", "ph": "M", "pid": pid,
                    "tid": tid, "args": {"name": track},
                })
            entry: Dict[str, Any] = {
                "name": name, "pid": pid, "tid": tid,
                "ts": (epoch + start - epoch0) * 1e6,
            }
            if isinstance(attrs, dict) and attrs:
                entry["args"] = attrs
            if kind == SPAN:
                entry["ph"] = "X"
                entry["dur"] = max(duration, 0.0) * 1e6
            elif kind == INSTANT:
                entry["ph"] = "i"
                entry["s"] = "t"
            else:
                dropped += 1
                continue
            body.append(entry)
    body.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {
        "traceEvents": metadata + body,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": producer,
            "traceparent": traceparent,
            "processes": len(pid_of),
            "dropped_events": dropped,
        },
    }


# ---------------------------------------------------------------------------
# fleet metrics aggregation
# ---------------------------------------------------------------------------


class MetricsAggregator:
    """Merge :meth:`MetricsRegistry.to_dict` snapshots into one view.

    Merge semantics match the metric kinds: **counters sum** (each
    worker counted disjoint events), **gauges last-write-win** (a gauge
    is a point-in-time observation), **histograms bucket-merge**
    (element-wise bucket addition when bucket bounds agree — the merged
    quantiles are then exactly the quantiles of the pooled
    observations; on a bounds mismatch only count/sum/min/max merge
    and the quantiles degrade to the mean).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Dict[str, Any]] = {}
        self.snapshots = 0

    def add(self, snapshot: Any) -> None:
        """Merge one registry snapshot (tolerates malformed input)."""
        if not isinstance(snapshot, dict):
            return
        self.snapshots += 1
        for key, value in (snapshot.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                self._counters[key] = \
                    self._counters.get(key, 0.0) + float(value)
        for key, value in (snapshot.get("gauges") or {}).items():
            if isinstance(value, (int, float)):
                self._gauges[key] = float(value)
        for key, value in (snapshot.get("histograms") or {}).items():
            if isinstance(value, dict):
                self._merge_histogram(key, value)

    def _merge_histogram(self, key: str,
                         incoming: Dict[str, Any]) -> None:
        bounds = incoming.get("bounds")
        buckets = incoming.get("buckets")
        mergeable = (isinstance(bounds, (list, tuple))
                     and isinstance(buckets, list)
                     and len(buckets) == len(bounds) + 1)
        count = incoming.get("count") or 0
        total = incoming.get("sum") or 0.0
        minimum = incoming.get("min")
        maximum = incoming.get("max")
        slot = self._histograms.get(key)
        if slot is None:
            self._histograms[key] = {
                "count": int(count), "sum": float(total),
                "min": minimum, "max": maximum,
                "bounds": tuple(float(b) for b in bounds)
                if mergeable else None,
                "buckets": [int(b) for b in buckets]
                if mergeable else None,
            }
            return
        slot["count"] += int(count)
        slot["sum"] += float(total)
        if minimum is not None and (slot["min"] is None
                                    or minimum < slot["min"]):
            slot["min"] = minimum
        if maximum is not None and (slot["max"] is None
                                    or maximum > slot["max"]):
            slot["max"] = maximum
        if slot["buckets"] is not None and mergeable \
                and slot["bounds"] == tuple(float(b) for b in bounds):
            for index, value in enumerate(buckets):
                slot["buckets"][index] += int(value)
        else:
            # bounds disagree (or one side is unmergeable): quantiles
            # over pooled buckets would be wrong — keep the exact
            # moments, drop the bucket detail
            slot["bounds"] = None
            slot["buckets"] = None

    def _histogram_view(self, slot: Dict[str, Any]) -> Dict[str, Any]:
        count = slot["count"]
        mean = slot["sum"] / count if count else 0.0
        view: Dict[str, Any] = {
            "count": count, "sum": slot["sum"],
            "min": slot["min"], "max": slot["max"], "mean": mean,
        }
        if slot["bounds"] is not None and count:
            shadow = Histogram(slot["bounds"])
            shadow.buckets = list(slot["buckets"])
            shadow.count = count
            shadow.total = slot["sum"]
            shadow.minimum = (slot["min"] if slot["min"] is not None
                              else float("inf"))
            shadow.maximum = (slot["max"] if slot["max"] is not None
                              else float("-inf"))
            view["p50"] = shadow.quantile(0.50)
            view["p95"] = shadow.quantile(0.95)
            view["bounds"] = list(slot["bounds"])
            view["buckets"] = list(slot["buckets"])
        else:
            view["p50"] = mean
            view["p95"] = mean
        return view

    def to_dict(self) -> Dict[str, Any]:
        """A merged snapshot in :meth:`MetricsRegistry.to_dict` shape
        (itself re-mergeable into another aggregator)."""
        return {
            "counters": {key: self._counters[key]
                         for key in sorted(self._counters)},
            "gauges": {key: self._gauges[key]
                       for key in sorted(self._gauges)},
            "histograms": {key: self._histogram_view(
                self._histograms[key])
                for key in sorted(self._histograms)},
        }

    def merged(self, *extra: Any) -> Dict[str, Any]:
        """The merged view of this aggregator plus ``extra`` snapshots,
        without mutating accumulated state (scrape-time composition:
        the server merges its own live registry in per request)."""
        clone = MetricsAggregator()
        clone.add(self.to_dict())
        for snapshot in extra:
            clone.add(snapshot)
        return clone.to_dict()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^\[\]]+)(\[(?P<labels>[^\]]*)\])?$")

#: Counter families folded from dotted metric names into one Prometheus
#: family with a discriminating label, so dashboards can sum and facet:
#: ``service.points.executed[tenant=ana]`` becomes
#: ``service_points_total{kind="executed",tenant="ana"}``.
COUNTER_FAMILIES = (
    ("service.points.", "service_points_total", "kind"),
    ("service.jobs.", "service_jobs_total", "event"),
    ("service.chunks.", "service_chunks_total", "event"),
)


def split_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.observe.metric_key`:
    ``"a.b[k=v,k2=v2]"`` → ``("a.b", {"k": "v", "k2": "v2"})``."""
    match = _KEY_RE.match(key)
    if match is None:
        return key, {}
    labels: Dict[str, str] = {}
    if match["labels"]:
        for pair in match["labels"].split(","):
            label, _, value = pair.partition("=")
            labels[label] = value
    return match["name"], labels


def sanitize_metric_name(name: str) -> str:
    out = _NAME_SANITIZE.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(key)}="{_escape_label_value(value)}"'
        for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _counter_family(name: str) -> Tuple[str, Dict[str, str]]:
    for prefix, family, label in COUNTER_FAMILIES:
        suffix = name[len(prefix):] if name.startswith(prefix) else ""
        if suffix:
            return family, {label: suffix}
    return sanitize_metric_name(name) + "_total", {}


def prometheus_text(snapshot: Dict[str, Any]) -> str:
    """Render a registry/aggregator snapshot as Prometheus text
    exposition format (version 0.0.4)."""
    families: Dict[str, Dict[str, Any]] = {}

    def family_slot(family: str, kind: str) -> List[Tuple[str, Dict[str, str], float]]:
        slot = families.setdefault(family,
                                   {"type": kind, "samples": []})
        return slot["samples"]

    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = split_metric_key(key)
        family, extra = _counter_family(name)
        samples = family_slot(family, "counter")
        samples.append((family, {**labels, **extra}, value))

    for key, value in (snapshot.get("gauges") or {}).items():
        name, labels = split_metric_key(key)
        family = sanitize_metric_name(name)
        samples = family_slot(family, "gauge")
        samples.append((family, labels, value))

    for key, dump in (snapshot.get("histograms") or {}).items():
        if not isinstance(dump, dict):
            continue
        name, labels = split_metric_key(key)
        family = sanitize_metric_name(name)
        samples = family_slot(family, "histogram")
        count = float(dump.get("count") or 0)
        total = float(dump.get("sum") or 0.0)
        bounds = dump.get("bounds")
        buckets = dump.get("buckets")
        if isinstance(bounds, (list, tuple)) \
                and isinstance(buckets, list) \
                and len(buckets) == len(bounds) + 1:
            cumulative = 0.0
            for bound, bucket in zip(bounds, buckets):
                cumulative += bucket
                samples.append((f"{family}_bucket",
                                {**labels,
                                 "le": _format_value(bound)},
                                cumulative))
        samples.append((f"{family}_bucket",
                        {**labels, "le": "+Inf"}, count))
        samples.append((f"{family}_sum", labels, total))
        samples.append((f"{family}_count", labels, count))

    lines: List[str] = []
    for family in sorted(families):
        slot = families[family]
        lines.append(f"# TYPE {family} {slot['type']}")
        for sample_name, labels, value in slot["samples"]:
            lines.append(f"{sample_name}{_format_labels(labels)} "
                         f"{_format_value(value)}")
    return "\n".join(lines) + "\n"


# -- exposition validation (CI gate + tests) --------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>NaN|[+-]Inf|[-+]?[0-9.]+(?:[eE][-+]?[0-9]+)?)$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def _parse_labels(label_text: str) -> Optional[Dict[str, str]]:
    """Labels from ``k="v",k2="v2"``; ``None`` when malformed."""
    labels: Dict[str, str] = {}
    rebuilt: List[str] = []
    for match in _LABEL_PAIR_RE.finditer(label_text):
        labels[match.group(1)] = match.group(2)
        rebuilt.append(match.group(0))
    if ",".join(rebuilt) != label_text:
        return None
    return labels


def validate_prometheus_text(text: str) -> List[str]:
    """Structural problems in a text exposition (empty = valid).

    Checks: parseable sample lines, a ``# TYPE`` declared before a
    family's samples, cumulative (non-decreasing) histogram buckets,
    and a ``le="+Inf"`` bucket equal to the series' ``_count``.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    buckets: Dict[Tuple[str, frozenset], List[Tuple[str, float]]] = {}
    counts: Dict[Tuple[str, frozenset], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                    problems.append(
                        f"line {lineno}: malformed TYPE comment")
                else:
                    types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(
                f"line {lineno}: unparseable sample {line!r}")
            continue
        name = match["name"]
        labels = _parse_labels(match["labels"] or "")
        if labels is None:
            problems.append(f"line {lineno}: malformed labels in "
                            f"{line!r}")
            continue
        value = float(match["value"].replace("Inf", "inf"))
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            stem = name[:-len(suffix)] if name.endswith(suffix) else ""
            if stem and types.get(stem) == "histogram":
                family = stem
                break
        if family not in types:
            problems.append(
                f"line {lineno}: sample {name!r} has no preceding "
                "# TYPE")
            continue
        if types[family] == "histogram":
            series = (family, frozenset(
                item for item in labels.items() if item[0] != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    problems.append(
                        f"line {lineno}: histogram bucket without "
                        "an le label")
                else:
                    buckets.setdefault(series, []).append(
                        (labels["le"], value))
            elif name.endswith("_count"):
                counts[series] = value
    for series, series_buckets in buckets.items():
        family = series[0]
        values = [value for _le, value in series_buckets]
        if any(later < earlier
               for earlier, later in zip(values, values[1:])):
            problems.append(
                f"histogram {family}: bucket counts are not "
                "cumulative")
        les = dict(series_buckets)
        if "+Inf" not in les:
            problems.append(
                f"histogram {family}: missing le=\"+Inf\" bucket")
        elif series in counts and les["+Inf"] != counts[series]:
            problems.append(
                f"histogram {family}: +Inf bucket "
                f"({les['+Inf']:g}) != _count "
                f"({counts[series]:g})")
    return problems
