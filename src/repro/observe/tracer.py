"""Span-based tracing: what the kernel actually did, on a timeline.

A :class:`Tracer` records *spans* (named intervals with attributes) and
*instants* (point events) onto logical **tracks** — one per kernel,
cluster, or solver — so a heterogeneous simulation (DE delta cycles,
TDF cluster activations, CT/ELN solver steps, resilience escalations)
becomes one navigable timeline.  Everything is recorded in memory as
plain tuples; the exporters (:mod:`repro.observe.exporters`) turn the
buffer into Chrome trace-event JSON (loadable in Perfetto /
``chrome://tracing``) or structured JSONL after the run.

Cost model: a closed span is one ``perf_counter()`` pair plus one list
append.  When the tracer is disabled (``Telemetry(spans=False)``) the
``span()`` context manager degrades to a shared no-op object, and the
instrumented layers skip their guards entirely when no telemetry hub is
installed at all — the disabled path must stay within noise of the
uninstrumented engine (see ``tests/test_observe.py``).
"""

from __future__ import annotations

import time as _time
from typing import Any, Dict, List, Optional, Tuple

#: Hard cap on buffered events; beyond it new events are counted in
#: ``Tracer.dropped`` instead of recorded, so a pathological run cannot
#: exhaust memory.  4M spans is ~hours of fully traced simulation.
DEFAULT_MAX_EVENTS = 4_000_000

#: Event kinds stored in ``Tracer.events``.
SPAN = "span"
INSTANT = "instant"


class SpanHandle:
    """An open span; close it via ``with`` or :meth:`close`.

    Attributes set through :meth:`set` are merged into the span's
    ``args`` on close — use it for results only known at the end
    (e.g. how many periods a cluster wake actually executed).
    """

    __slots__ = ("tracer", "name", "track", "start", "attrs", "_open")

    def __init__(self, tracer: "Tracer", name: str, track: str,
                 attrs: Optional[Dict[str, Any]]):
        self.tracer = tracer
        self.name = name
        self.track = track
        self.attrs = attrs
        self.start = _time.perf_counter()
        self._open = True
        tracer._open_spans[id(self)] = self

    def set(self, **attrs: Any) -> "SpanHandle":
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def close(self) -> None:
        if not self._open:
            return
        self._open = False
        tracer = self.tracer
        tracer._open_spans.pop(id(self), None)
        tracer.complete(self.name, self.start,
                        _time.perf_counter() - self.start,
                        track=self.track, attrs=self.attrs)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.set(error=exc_type.__name__)
        self.close()


class _NullSpan:
    """Shared no-op stand-in returned when span recording is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans and instants relative to a wall-clock epoch.

    Events are ``(kind, name, track, start_s, dur_s, attrs)`` tuples
    with times in seconds since :attr:`epoch`; recording is
    append-only and single-threaded (the simulation kernel is
    single-threaded by construction), so per-track ordering falls out
    of the recording order once events are sorted by start time.
    """

    def __init__(self, enabled: bool = True,
                 max_events: int = DEFAULT_MAX_EVENTS):
        self.enabled = enabled
        self.max_events = int(max_events)
        self.epoch = _time.perf_counter()
        self.events: List[Tuple[str, str, str, float, float,
                                Optional[Dict[str, Any]]]] = []
        self.dropped = 0
        self._open_spans: Dict[int, SpanHandle] = {}

    # -- recording ----------------------------------------------------------

    def span(self, name: str, track: str = "main", **attrs: Any):
        """Open a span; use as a context manager (or close() manually)."""
        if not self.enabled:
            return NULL_SPAN
        return SpanHandle(self, name, track, attrs or None)

    def complete(self, name: str, start: float, duration: float,
                 track: str = "main",
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record an already-measured interval (the hot-path form:
        callers time with ``perf_counter()`` themselves and avoid the
        context-manager machinery)."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((SPAN, name, track, start - self.epoch,
                            duration, attrs))

    def instant(self, name: str, track: str = "main",
                **attrs: Any) -> None:
        """Record a point event (e.g. a solver tier escalation)."""
        if not self.enabled:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append((INSTANT, name, track,
                            _time.perf_counter() - self.epoch, 0.0,
                            attrs or None))

    # -- inspection ---------------------------------------------------------

    def open_spans(self) -> List[str]:
        """Names of spans opened but never closed (a bug in the
        instrumented code — the exporters surface these)."""
        return [span.name for span in self._open_spans.values()]

    def tracks(self) -> List[str]:
        seen: List[str] = []
        for _kind, _name, track, _ts, _dur, _attrs in self.events:
            if track not in seen:
                seen.append(track)
        return seen

    def spans_named(self, name: str) -> List[Tuple[float, float,
                                                   Optional[dict]]]:
        """``(start_s, dur_s, attrs)`` of every closed span ``name``."""
        return [(ts, dur, attrs)
                for kind, n, _track, ts, dur, attrs in self.events
                if kind == SPAN and n == name]

    def __len__(self) -> int:
        return len(self.events)
