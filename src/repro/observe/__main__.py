"""Terminal front-end for exported telemetry.

Usage::

    python -m repro.observe summary OUT_DIR      # human digest
    python -m repro.observe check OUT_DIR        # structural gate
    python -m repro.observe promcheck FILE       # Prometheus text gate

``OUT_DIR`` is a :meth:`repro.observe.Telemetry.export` output
directory (``trace.json`` + ``metrics.json``); individual file paths
are also accepted.  ``check`` exits non-zero when the Chrome trace is
structurally invalid (unmatched ``B``/``E`` spans, negative durations,
non-monotonic per-track timestamps) or any metric value is NaN/Inf —
the CI observability job gates on it.  A *truncated* trace (the tracer
hit its event cap and dropped events) still passes but prints a
warning, so a silently partial trace never masquerades as a complete
one.  ``promcheck`` validates a saved ``GET /metrics`` scrape as
Prometheus text exposition — the CI service-smoke job gates on it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from . import (
    summarize_metrics_dump,
    validate_chrome_trace,
    validate_metrics,
    validate_prometheus_text,
)


def _resolve(path_argument: str) -> Tuple[Optional[Path], Optional[Path]]:
    """``(trace_path, metrics_path)`` for a directory or file path."""
    path = Path(path_argument)
    if path.is_dir():
        trace = path / "trace.json"
        metrics = path / "metrics.json"
        return (trace if trace.exists() else None,
                metrics if metrics.exists() else None)
    if path.name.startswith("metrics"):
        return None, path
    return path, None


def _load(path: Path) -> Any:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _span_digest(trace: Dict[str, Any], top: int = 12) -> str:
    totals: Dict[str, list] = {}
    unclosed = 0
    for event in trace.get("traceEvents", []):
        phase = event.get("ph")
        if phase == "X":
            bucket = totals.setdefault(event.get("name", "?"),
                                       [0, 0.0])
            bucket[0] += 1
            bucket[1] += float(event.get("dur", 0.0))
        elif phase == "B":
            unclosed += 1
    lines = ["spans (by total wall time):",
             f"  {'name':<32} {'count':>9} {'total_ms':>10}"]
    ranked = sorted(totals.items(), key=lambda kv: -kv[1][1])
    for name, (count, total_us) in ranked[:top]:
        lines.append(f"  {name:<32} {count:>9} {total_us / 1e3:>10.2f}")
    if unclosed:
        lines.append(f"  UNCLOSED spans: {unclosed}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("command",
                        choices=("summary", "check", "promcheck"),
                        help="'summary' prints a digest; 'check' "
                        "validates structurally and exits non-zero "
                        "on problems; 'promcheck' validates a "
                        "Prometheus text exposition file")
    parser.add_argument("path", help="telemetry export directory "
                        "(or a trace.json / metrics.json path; for "
                        "promcheck, a saved /metrics scrape)")
    args = parser.parse_args(argv)

    if args.command == "promcheck":
        try:
            text = Path(args.path).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        prom_problems = validate_prometheus_text(text)
        if prom_problems:
            for problem in prom_problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        samples = sum(1 for line in text.splitlines()
                      if line.strip() and not line.startswith("#"))
        print(f"ok: {args.path} ({samples} sample(s))")
        return 0

    trace_path, metrics_path = _resolve(args.path)
    if trace_path is None and metrics_path is None:
        print(f"error: no trace.json or metrics.json under "
              f"{args.path!r}", file=sys.stderr)
        return 2

    problems = []
    trace = metrics = None
    if trace_path is not None:
        try:
            trace = _load(trace_path)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{trace_path}: unreadable ({exc})")
    if metrics_path is not None:
        try:
            metrics = _load(metrics_path)
        except (OSError, json.JSONDecodeError) as exc:
            problems.append(f"{metrics_path}: unreadable ({exc})")

    if args.command == "check":
        if trace is not None:
            problems.extend(validate_chrome_trace(trace))
        if metrics is not None:
            problems.extend(validate_metrics(metrics))
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}", file=sys.stderr)
            return 1
        if isinstance(trace, dict):
            dropped = (trace.get("otherData") or {}) \
                .get("dropped_events") or 0
            if dropped:
                # truncation is not a structural failure (everything
                # recorded is still valid) but must not pass silently
                print(f"warning: trace truncated — {dropped} "
                      "event(s) dropped at the tracer cap "
                      "(raise max_events to capture them)",
                      file=sys.stderr)
        checked = [str(p) for p in (trace_path, metrics_path) if p]
        print(f"ok: {', '.join(checked)}")
        return 0

    # summary
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    sections = []
    if trace is not None:
        sections.append(_span_digest(trace))
    if metrics is not None:
        sections.append(summarize_metrics_dump(metrics))
    print("\n\n".join(sections) if sections
          else "no telemetry found")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... summary DIR | head`
        sys.exit(0)
