"""DC sweep: static transfer curves.

The paper's static-analysis taxonomy includes "transfer functions of
the system".  :func:`dc_sweep` computes the DC solution over a swept
parameter with continuation (each solution seeds the next Newton
solve), which keeps hard nonlinear curves — inverter VTCs, rectifier
characteristics — cheap and robust.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.errors import ConvergenceError
from .nonlinear import NonlinearSystem, dc_operating_point


def dc_sweep(
    system: NonlinearSystem,
    set_value: Callable[[float], None],
    values: np.ndarray,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve the DC operating point for each swept value.

    ``set_value(v)`` mutates the swept parameter (typically a source's
    waveform) before each solve.  Returns an array of shape
    ``(len(values), n)``.  Continuation: each converged point seeds the
    next; the first point falls back to gmin homotopy if needed.
    """
    values = np.atleast_1d(np.asarray(values, dtype=float))
    out = np.empty((len(values), system.n))
    guess = x0
    for k, value in enumerate(values):
        set_value(float(value))
        try:
            solution = dc_operating_point(system, x0=guess,
                                          gmin_stepping=k == 0)
        except ConvergenceError:
            # A sharp corner in the curve: re-run with full homotopy.
            solution = dc_operating_point(system, x0=guess,
                                          gmin_stepping=True)
        out[k] = solution
        guess = solution
    return out


def sweep_source(
    network,
    source_name: str,
    values: np.ndarray,
) -> tuple[np.ndarray, "object"]:
    """Convenience wrapper: sweep a named source of a
    :class:`~repro.nonlin.network.NonlinearNetwork`.

    Returns ``(states, index)`` with ``states[k]`` the MNA solution at
    ``values[k]``.
    """
    source = None
    for component in network.components:
        if component.name == source_name:
            source = component
            break
    if source is None:
        from ..core.errors import ElaborationError

        raise ElaborationError(
            f"no source named {source_name!r} in network"
        )
    # Install the mutable level BEFORE assembly: MNA stamping captures
    # the waveform callables, so a later reassignment would be ignored.
    level = {"value": 0.0}
    source.waveform = lambda t: level["value"]
    system, index = network.assemble_nonlinear()

    def set_value(v: float) -> None:
        level["value"] = v

    states = dc_sweep(system, set_value, values)
    return states, index
