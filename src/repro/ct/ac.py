"""Small-signal frequency-domain (AC) analysis.

Per the paper, the frequency-domain model is *derived from the time-domain
description*: the same ``C``/``G`` matrices used for transient analysis are
evaluated as complex phasor equations ``(G + j*omega*C) X = B``.  For
nonlinear systems the matrices are the Jacobians at the DC operating point
(:func:`linearize`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from ..core.errors import SolverError
from .nonlinear import NonlinearSystem


def ac_sweep(
    C: np.ndarray,
    G: np.ndarray,
    b_ac: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Solve ``(G + j*2*pi*f*C) X = b_ac`` for each frequency.

    ``b_ac`` may be one excitation vector (shape ``(n,)``) or a matrix of
    RHS columns (shape ``(n, m)``, e.g. one column per source): each
    system matrix is factorized once and solved against every column in
    a single batched call.  Dense matrices are solved as one stacked
    LAPACK call over all frequencies; sparse matrices use SuperLU per
    frequency (multi-RHS).  Returns a complex array of shape
    ``(len(frequencies), n)`` or ``(len(frequencies), n, m)``.
    """
    b = np.asarray(b_ac, dtype=complex)
    single = b.ndim == 1
    freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
    if sp.issparse(C) or sp.issparse(G):
        C = C if sp.issparse(C) else sp.csr_matrix(np.asarray(C, float))
        G = G if sp.issparse(G) else sp.csr_matrix(np.asarray(G, float))
        n = G.shape[0]
        cols = b.reshape(n, -1)
        out = np.empty((len(freqs), n, cols.shape[1]), dtype=complex)
        for k, f in enumerate(freqs):
            A = (G + 2j * np.pi * f * C).tocsc()
            try:
                out[k] = splu(A).solve(cols)
            except RuntimeError as exc:
                raise SolverError(
                    f"singular system matrix in AC sweep at f={f}"
                ) from exc
        return out[:, :, 0] if single else out
    C = np.asarray(C, dtype=float)
    G = np.asarray(G, dtype=float)
    n = G.shape[0]
    cols = b.reshape(n, -1)
    # One factorization per frequency, all frequencies and RHS columns
    # in a single stacked LAPACK call instead of a Python loop.
    A = (G[None, :, :]
         + 2j * np.pi * freqs[:, None, None] * C[None, :, :])
    rhs = np.broadcast_to(cols[None, :, :], (len(freqs), n, cols.shape[1]))
    try:
        out = np.linalg.solve(A, rhs)
    except np.linalg.LinAlgError:
        # The stacked solve reports failure for the whole batch; redo
        # frequency by frequency to name the singular one.
        for f, A_f in zip(freqs, A):
            try:
                np.linalg.solve(A_f, cols)
            except np.linalg.LinAlgError as exc:
                raise SolverError(
                    f"singular system matrix in AC sweep at f={f}"
                ) from exc
        raise SolverError("singular system matrix in AC sweep")
    return out[:, :, 0] if single else out


def linearize(
    system: NonlinearSystem,
    x_op: np.ndarray,
    t: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Small-signal matrices ``(C, G)`` of a nonlinear system at ``x_op``."""
    return (
        system.charge_jacobian(np.asarray(x_op, dtype=float)),
        system.static_jacobian(np.asarray(x_op, dtype=float), t),
    )


def transfer_function(
    C: np.ndarray,
    G: np.ndarray,
    input_vector: np.ndarray,
    output_vector: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Complex transfer ``H(f) = d^T (G + j*w*C)^{-1} b`` over a sweep."""
    phasors = ac_sweep(C, G, input_vector, frequencies)
    return phasors @ np.asarray(output_vector, dtype=complex)


def magnitude_db(values: np.ndarray) -> np.ndarray:
    """20*log10(|H|), floored at -400 dB to avoid log-of-zero warnings."""
    mags = np.abs(np.asarray(values))
    return 20.0 * np.log10(np.maximum(mags, 1e-20))


def phase_deg(values: np.ndarray, unwrap: bool = True) -> np.ndarray:
    """Phase response in degrees (unwrapped by default)."""
    phases = np.angle(np.asarray(values))
    if unwrap:
        phases = np.unwrap(phases)
    return np.degrees(phases)


def corner_frequency(frequencies: np.ndarray, response: np.ndarray,
                     drop_db: float = 3.0) -> float:
    """First frequency at which |H| falls ``drop_db`` below its DC value.

    Uses log-log interpolation between sweep points.
    """
    mags = magnitude_db(response)
    target = mags[0] - drop_db
    below = np.nonzero(mags <= target)[0]
    if below.size == 0:
        raise SolverError(
            f"response never drops {drop_db} dB within the sweep"
        )
    k = below[0]
    if k == 0:
        return float(frequencies[0])
    f_lo, f_hi = frequencies[k - 1], frequencies[k]
    m_lo, m_hi = mags[k - 1], mags[k]
    fraction = (target - m_lo) / (m_hi - m_lo)
    return float(f_lo * (f_hi / f_lo) ** fraction)
