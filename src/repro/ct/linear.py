"""Linear DAE systems and their fixed-timestep solution.

The paper's Phase 1 requires a "linear dynamic continuous-time MoC" with
fixed-timestep time-domain simulation.  Systems have the standard
linear-network / state-space form

    C * dx/dt + G * x = b(t)

where ``C`` may be singular (a genuine DAE, as produced by Modified Nodal
Analysis of an electrical network) and ``b`` collects the independent
sources.  Because the system is linear, each timestep is one solve with a
constant matrix — "the resulting system of equations can be solved without
iterations" — and the matrix is LU-factorized once per timestep value.

Three interchangeable stepper variants share that contract:

* ``dense`` — LAPACK ``lu_factor`` / ``getrs``, best below the sparsity
  crossover;
* ``sparse`` — SuperLU (``splu``) on ``scipy.sparse`` matrices, for the
  large ELN networks where dense solves become quadratic waste;
* ``expm`` — an exact matrix-exponential propagator for LTI sections with
  invertible ``C`` (first-order-hold sources integrated in closed form).

Factorizations are cached per timestep value (an LRU keyed on ``h``) and
invalidated only by :meth:`~LinearStepper.invalidate` /
:meth:`~LinearStepper.rebind` on topology or switch events — never per
step.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Callable, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.linalg import expm, get_lapack_funcs, lu_factor, lu_solve
from scipy.sparse.linalg import splu

from ..core.errors import SolverError

#: Supported fixed-step integration methods and their theoretical orders.
METHOD_ORDERS = {"backward_euler": 1, "trapezoidal": 2}

#: Solver-variant names accepted by :func:`make_stepper` and the
#: higher-level ``solver_variant=`` APIs.
STEPPER_VARIANTS = ("auto", "dense", "sparse", "expm")

#: System size (unknown count) above which ``variant="auto"`` picks the
#: sparse path.  Measured crossover on RC ladders is ~150-200 unknowns.
SPARSE_AUTO_THRESHOLD = 150

#: Per-stepper LRU capacity of the ``h``-keyed factorization cache.
#: Synchronization intervals vary at ULP level, producing a handful of
#: distinct ``h`` values per run; 8 slots cover them with room to spare.
FACTOR_CACHE_SIZE = 8


class LinearDae:
    """A linear differential-algebraic system ``C x' + G x = b(t)``.

    ``C`` and ``G`` may be dense ``ndarray``s (the historical form) or
    ``scipy.sparse`` matrices; :attr:`is_sparse` records which.  All
    analyses work on either representation.
    """

    def __init__(
        self,
        C,
        G,
        source: Optional[Callable[[float], np.ndarray]] = None,
        names: Optional[Sequence[str]] = None,
    ):
        if sp.issparse(C) or sp.issparse(G):
            self.C = self._as_csr(C)
            self.G = self._as_csr(G)
            self.is_sparse = True
        else:
            self.C = np.asarray(C, dtype=float)
            self.G = np.asarray(G, dtype=float)
            self.is_sparse = False
        n = self.G.shape[0]
        if self.C.shape != (n, n) or self.G.shape != (n, n):
            raise SolverError(
                f"inconsistent system shapes C{self.C.shape} G{self.G.shape}"
            )
        self.n = n
        self.source = source or (lambda t: np.zeros(n))
        self.names = list(names) if names else [f"x{i}" for i in range(n)]

    @staticmethod
    def _as_csr(matrix):
        csr = matrix.tocsr() if sp.issparse(matrix) \
            else sp.csr_matrix(np.asarray(matrix, dtype=float))
        if csr.dtype != np.float64:
            csr = csr.astype(float)
        return csr

    def dense_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """``(C, G)`` as dense ndarrays regardless of representation."""
        if self.is_sparse:
            return self.C.toarray(), self.G.toarray()
        return self.C, self.G

    # -- static analyses --------------------------------------------------------

    def dc(self) -> np.ndarray:
        """DC operating point: solve ``G x = b(0)`` (derivatives zero)."""
        b = np.asarray(self.source(0.0), dtype=float)
        if self.is_sparse:
            try:
                x = splu(self.G.tocsc()).solve(b)
            except RuntimeError as exc:
                raise SolverError(
                    "singular conductance matrix in DC analysis; the "
                    "network likely has a floating node or an inductor "
                    "loop"
                ) from exc
            if not np.all(np.isfinite(x)):
                raise SolverError(
                    "singular conductance matrix in DC analysis; the "
                    "network likely has a floating node or an inductor "
                    "loop"
                )
            return x
        try:
            return np.linalg.solve(self.G, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular conductance matrix in DC analysis; the network "
                "likely has a floating node or an inductor loop"
            ) from exc

    def ac(self, frequencies: np.ndarray,
           b_ac: Optional[np.ndarray] = None) -> np.ndarray:
        """Small-signal frequency-domain analysis.

        Solves ``(G + j*2*pi*f*C) X = b_ac`` for each frequency.  Returns a
        complex array of shape ``(len(frequencies), n)``.  ``b_ac`` defaults
        to the source vector at t=0 interpreted as a unit-phasor excitation
        pattern.
        """
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        if b_ac is None:
            b_ac = np.asarray(self.source(0.0), dtype=float).copy()
        if self.is_sparse:
            b = np.asarray(b_ac, dtype=complex)
            out = np.empty((len(freqs), self.n), dtype=complex)
            for k, f in enumerate(freqs):
                A_f = (self.G + 2j * np.pi * f * self.C).tocsc()
                try:
                    out[k] = splu(A_f).solve(b)
                except RuntimeError as exc:
                    raise SolverError(
                        f"singular system matrix in AC analysis at f={f}"
                    ) from exc
            return out
        # Stack (G + j*2*pi*f*C) for all frequencies and solve the whole
        # batch in one LAPACK call instead of a Python loop.
        A = (self.G[None, :, :]
             + 2j * np.pi * freqs[:, None, None] * self.C[None, :, :])
        rhs = np.broadcast_to(
            np.asarray(b_ac, dtype=complex)[None, :, None],
            (len(freqs), self.n, 1),
        )
        try:
            return np.linalg.solve(A, rhs)[:, :, 0]
        except np.linalg.LinAlgError:
            # Batched solve reports failure for the whole stack; redo
            # frequency by frequency to name the singular one.
            for f, A_f in zip(freqs, A):
                try:
                    np.linalg.solve(A_f, np.asarray(b_ac, dtype=complex))
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        f"singular system matrix in AC analysis at f={f}"
                    ) from exc
            raise SolverError("singular system matrix in AC analysis")

    # -- transient -----------------------------------------------------------------

    def eval_source_block(self, times: np.ndarray) -> np.ndarray:
        """Source vectors for many time points: shape (len(times), n).

        Each row equals ``source(t)`` exactly (the source callable is
        still invoked once per time point — arbitrary Python callables
        cannot be batched safely — but callers get one contiguous array
        to slice instead of issuing interleaved calls).
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((len(times), self.n))
        for k in range(len(times)):
            out[k] = self.source(times[k])
        return out

    def transient(
        self,
        t_end: float,
        h: float,
        x0: Optional[np.ndarray] = None,
        t0: float = 0.0,
        method: str = "trapezoidal",
        variant: str = "auto",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-step time-domain simulation.

        Returns ``(times, states)`` with ``states[k]`` the solution at
        ``times[k]``; ``times[0] == t0`` holds the initial condition
        (default: the DC operating point).
        """
        stepper = make_stepper(self, h, method, variant)
        x = self.dc() if x0 is None else np.asarray(x0, dtype=float)
        steps = int(round((t_end - t0) / h))
        times = t0 + h * np.arange(steps + 1)
        states = np.empty((steps + 1, self.n))
        states[0] = x
        if steps:
            states[1:] = stepper.step_block(x, times[:steps])
        return times, states


class _Factors:
    """Factorization products for one timestep value."""

    __slots__ = ("solve", "M")

    def __init__(self, solve, M):
        self.solve = solve
        self.M = M


class _ExpmFactors:
    """Exact propagators for one timestep value."""

    __slots__ = ("phi", "P_now", "P_next")

    def __init__(self, phi, P_now, P_next):
        self.phi = phi
        self.P_now = P_now
        self.P_next = P_next


class _FactorCacheMixin:
    """Shared ``h``-keyed LRU factorization cache with reuse counters.

    Subclasses provide ``_build(h)``.  ``factorizations`` counts every
    factorization performed, ``cache_hits`` every reuse of a cached one,
    and ``refactorizations`` the factorizations forced by
    :meth:`invalidate` (topology/switch events) rather than by a new
    timestep value.
    """

    def _init_cache(self) -> None:
        self._cache: OrderedDict = OrderedDict()
        self._pending_refactor = False
        self.factorizations = 0
        self.refactorizations = 0
        self.cache_hits = 0

    def _factors(self, h: float):
        cache = self._cache
        fac = cache.get(h)
        if fac is not None:
            self.cache_hits += 1
            cache.move_to_end(h)
            return fac
        fac = self._build(h)
        self.factorizations += 1
        if self._pending_refactor:
            self.refactorizations += 1
            self._pending_refactor = False
        cache[h] = fac
        while len(cache) > FACTOR_CACHE_SIZE:
            cache.popitem(last=False)
        return fac

    def set_timestep(self, h: float) -> None:
        if h != self.h:
            if h <= 0:
                raise SolverError(f"timestep must be positive, got {h}")
            self.h = h
            self._fac = self._factors(h)

    def invalidate(self) -> None:
        """Drop every cached factorization and refactorize the current
        timestep (called on topology/switch events)."""
        self._cache.clear()
        self._pending_refactor = True
        self._fac = self._factors(self.h)


class LinearStepper(_FactorCacheMixin):
    """Reusable one-step integrator for a :class:`LinearDae`.

    Factorizes the iteration matrix once per timestep value and caches
    the factors (LRU over recent ``h`` values), so alternating or
    ULP-jittered synchronization intervals reuse factorizations instead
    of recomputing them.  This is the object the synchronization layer
    drives timestep by timestep in lockstep with a TDF cluster.

    ``variant`` selects the backend: ``"dense"`` (LAPACK), ``"sparse"``
    (SuperLU) or ``"auto"`` (sparse for sparse systems and above
    :data:`SPARSE_AUTO_THRESHOLD` unknowns).
    """

    def __init__(self, system: LinearDae, h: float,
                 method: str = "trapezoidal", variant: str = "auto"):
        if method not in METHOD_ORDERS:
            raise SolverError(
                f"unknown integration method {method!r}; "
                f"expected one of {sorted(METHOD_ORDERS)}"
            )
        if h <= 0:
            raise SolverError(f"timestep must be positive, got {h}")
        if variant not in ("auto", "dense", "sparse"):
            raise SolverError(
                f"unknown LinearStepper variant {variant!r}; "
                "expected 'auto', 'dense' or 'sparse'"
            )
        if variant == "auto":
            variant = "sparse" if (
                system.is_sparse or system.n >= SPARSE_AUTO_THRESHOLD
            ) else "dense"
        self.system = system
        self.method = method
        self.variant = variant
        self.h = h
        self._bind_matrices()
        self._init_cache()
        self._fac = self._factors(h)

    def _bind_matrices(self) -> None:
        system = self.system
        if self.variant == "sparse":
            if system.is_sparse:
                self._C, self._G = system.C, system.G
            else:
                self._C = sp.csr_matrix(system.C)
                self._G = sp.csr_matrix(system.G)
        else:
            if system.is_sparse:
                self._C, self._G = system.C.toarray(), system.G.toarray()
            else:
                self._C, self._G = system.C, system.G

    def rebind(self, system: LinearDae) -> None:
        """Adopt a re-assembled system (same unknowns, new matrices) and
        refactorize — the topology/switch-event invalidation hook."""
        self.system = system
        self._bind_matrices()
        self.invalidate()

    def _build(self, h: float) -> _Factors:
        C, G = self._C, self._G
        if self.method == "backward_euler":
            A = C / h + G
            M = None
        else:  # trapezoidal
            scaled = 2.0 * C / h
            A = scaled + G
            M = scaled - G
        if self.variant == "sparse":
            try:
                factor = splu(sp.csc_matrix(A))
            except RuntimeError as exc:
                raise SolverError(
                    f"iteration matrix is singular for h={h:.3e}"
                ) from exc
            return _Factors(factor.solve, M)
        try:
            with warnings.catch_warnings():
                # lu_factor reports exact singularity through a
                # LinAlgWarning and zero pivots instead of raising;
                # promote it to a deterministic SolverError so fallback
                # tiers see the failure at factorization time.
                warnings.simplefilter("error")
                lu, piv = lu_factor(A)
        except ValueError as exc:
            raise SolverError("cannot factorize iteration matrix") from exc
        except Warning as exc:
            raise SolverError(
                f"iteration matrix is singular for h={h:.3e}"
            ) from exc
        if not np.all(np.isfinite(lu)):
            raise SolverError(
                f"iteration matrix is singular for h={h:.3e}"
            )
        getrs, = get_lapack_funcs(("getrs",), (lu,))

        def solve(rhs, lu=lu, piv=piv, getrs=getrs):
            # Same LAPACK routine lu_solve dispatches to, minus the
            # wrapper overhead; bit-identical results.
            x, _info = getrs(lu, piv, rhs)
            return x

        return _Factors(solve, M)

    def step(self, x: np.ndarray, t: float) -> np.ndarray:
        """Advance from time ``t`` to ``t + h``."""
        h = self.h
        fac = self._fac
        b_next = np.asarray(self.system.source(t + h), dtype=float)
        if fac.M is None:  # backward_euler
            rhs = self._C @ x / h + b_next
        else:
            b_now = np.asarray(self.system.source(t), dtype=float)
            rhs = fac.M @ x
            rhs += b_next
            rhs += b_now
        if not np.all(np.isfinite(rhs)):
            error = SolverError(
                f"non-finite right-hand side at t={t:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = t
            raise error
        return fac.solve(rhs)

    def step_window(self, x: np.ndarray, h_values: np.ndarray,
                    b_next: np.ndarray,
                    b_now: Optional[np.ndarray] = None,
                    times: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance through a window of pre-evaluated source vectors.

        ``h_values[k]`` is the step size of step ``k``; ``b_next[k]`` /
        ``b_now[k]`` are the source vectors at the step's end / start
        (``b_now`` is unused for backward Euler).  Replays the scalar
        :meth:`step` arithmetic bit-for-bit — operand order and the
        cached factorization are identical — while hoisting source
        evaluation and attribute lookups out of the loop.  Returns the
        states after each step, shape ``(len(h_values), n)``.
        """
        steps = len(h_values)
        states = np.empty((steps, self.system.n))
        x = np.asarray(x, dtype=float)
        h_list = h_values.tolist() if isinstance(h_values, np.ndarray) \
            else list(h_values)
        h_cur = self.h
        fac = self._fac
        C = self._C
        if fac.M is None:  # backward_euler
            for k in range(steps):
                hk = h_list[k]
                if hk != h_cur:
                    self.set_timestep(hk)
                    h_cur = hk
                    fac = self._fac
                rhs = C @ x / hk + b_next[k]
                x = fac.solve(rhs)
                states[k] = x
        else:
            solve = fac.solve
            M = fac.M
            for k in range(steps):
                hk = h_list[k]
                if hk != h_cur:
                    self.set_timestep(hk)
                    h_cur = hk
                    fac = self._fac
                    solve = fac.solve
                    M = fac.M
                rhs = M @ x
                rhs += b_next[k]
                rhs += b_now[k]
                x = solve(rhs)
                states[k] = x
        if not np.all(np.isfinite(states)):
            bad = int(np.argwhere(
                ~np.isfinite(states).all(axis=1)
            )[0][0])
            t_bad = float(times[bad]) if times is not None else float("nan")
            error = SolverError(
                f"non-finite right-hand side at t={t_bad:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = t_bad
            raise error
        return states

    def step_block(self, x: np.ndarray, times: np.ndarray,
                   mode: str = "exact") -> np.ndarray:
        """Advance through ``len(times)`` consecutive steps at once.

        ``times[k]`` is the start time of step ``k`` (so the step
        advances to ``times[k] + h``); returns the states *after* each
        step as shape ``(len(times), n)``.  All source vectors are
        evaluated up front in one batch; the state recurrence itself is
        inherently sequential, so the per-step work differs by mode:

        * ``"exact"`` (default) — replays the scalar :meth:`step`
          arithmetic per step and is bit-identical to a Python loop of
          ``step`` calls, while amortizing source evaluation and
          attribute lookups over the whole block.
        * ``"fused"`` — performs a single multi-RHS solve for all
          source terms plus one for the state-propagation matrix,
          reducing the loop to one mat-vec per step.  Algebraically
          identical but associates the solves differently, so results
          may differ from scalar stepping at round-off (ULP) level.
        """
        if mode not in ("exact", "fused"):
            raise SolverError(
                f"unknown step_block mode {mode!r}; "
                "expected 'exact' or 'fused'"
            )
        times = np.atleast_1d(np.asarray(times, dtype=float))
        steps = len(times)
        system, h, fac = self.system, self.h, self._fac
        C = self._C
        states = np.empty((steps, system.n))
        x = np.asarray(x, dtype=float)
        b_next = system.eval_source_block(times + h)
        if self.method == "backward_euler":
            b_total = b_next
            b_now = None
        else:
            b_now = system.eval_source_block(times)
        if mode == "exact":
            for k in range(steps):
                if self.method == "backward_euler":
                    rhs = C @ x / h + b_next[k]
                else:
                    rhs = fac.M @ x + b_next[k] + b_now[k]
                if not np.all(np.isfinite(rhs)):
                    error = SolverError(
                        f"non-finite right-hand side at "
                        f"t={times[k]:.6e} (NaN/Inf source or state)"
                    )
                    error.time_point = float(times[k])
                    raise error
                x = fac.solve(rhs)
                states[k] = x
            return states
        # fused: q_k = A^-1 b_k for every step in one multi-RHS solve,
        # P = A^-1 M once, then x_{k+1} = P x_k + q_k.
        if self.method == "backward_euler":
            P_rhs = C / h
        else:
            P_rhs = fac.M
            b_total = b_next + b_now
        if sp.issparse(P_rhs):
            P_rhs = P_rhs.toarray()
        P = fac.solve(P_rhs)
        if not np.all(np.isfinite(b_total)):
            bad = int(np.argwhere(
                ~np.isfinite(b_total).all(axis=1)
            )[0][0])
            error = SolverError(
                f"non-finite right-hand side at t={times[bad]:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = float(times[bad])
            raise error
        Q = fac.solve(np.ascontiguousarray(b_total.T)).T
        for k in range(steps):
            x = P @ x + Q[k]
            states[k] = x
        if not np.all(np.isfinite(states)):
            raise SolverError("non-finite state in fused block step")
        return states


class ExpmStepper(_FactorCacheMixin):
    """Exact fixed-step propagator for LTI systems with invertible C.

    Rewrites ``C x' + G x = b(t)`` as ``x' = A x + C^-1 b(t)`` with
    ``A = -C^-1 G`` and advances with the closed-form variation-of-
    constants solution under a first-order hold on the sources:

        x(t+h) = phi x(t) + P_now b(t) + P_next b(t+h)

    where ``phi = expm(A h)`` and the source propagators come from one
    Van Loan augmented-matrix exponential

        expm([[A, I, 0], [0, 0, I], [0, 0, 0]] * h)
          = [[phi, F1, F2], ...],
        F1 = int_0^h expm(A (h-s)) ds,
        F2 = int_0^h expm(A (h-s)) s ds,
        P_now  = (F1 - F2/h) C^-1,   P_next = (F2/h) C^-1.

    Each step is then a handful of mat-vecs with *no* per-step solve;
    the propagators are cached per ``h`` like LU factors.  Exact for
    piecewise-linear inputs (and for any input at the sample instants up
    to the hold), so fixed-step LTI sections lose the time-discretization
    error entirely.
    """

    method = "expm"
    variant = "expm"

    def __init__(self, system: LinearDae, h: float):
        if h <= 0:
            raise SolverError(f"timestep must be positive, got {h}")
        self.system = system
        self.h = h
        self._derive()
        self._init_cache()
        self._fac = self._factors(h)

    def _derive(self) -> None:
        C, G = self.system.dense_matrices()
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                self._lu_c = lu_factor(C)
        except (ValueError, Warning) as exc:
            raise SolverError(
                "ExpmStepper requires an invertible C matrix (a pure ODE "
                "system); use the dense or sparse variants for DAE "
                "networks"
            ) from exc
        if not np.all(np.isfinite(self._lu_c[0])):
            raise SolverError(
                "ExpmStepper requires an invertible C matrix (a pure ODE "
                "system); use the dense or sparse variants for DAE "
                "networks"
            )
        self._A = -lu_solve(self._lu_c, G)

    def rebind(self, system: LinearDae) -> None:
        """Adopt a re-assembled system and rebuild every propagator."""
        self.system = system
        self._derive()
        self.invalidate()

    def _build(self, h: float) -> _ExpmFactors:
        n = self.system.n
        eye = np.eye(n)
        aug = np.zeros((3 * n, 3 * n))
        aug[:n, :n] = self._A
        aug[:n, n:2 * n] = eye
        aug[n:2 * n, 2 * n:] = eye
        P = expm(aug * h)
        if not np.all(np.isfinite(P)):
            raise SolverError(
                f"matrix exponential overflow for h={h:.3e} "
                "(unstable or badly scaled LTI section)"
            )
        phi = np.ascontiguousarray(P[:n, :n])
        F1 = P[:n, n:2 * n]
        F2 = P[:n, 2 * n:]
        # Fold C^-1 into the source propagators: X C^-1 = solve(C^T, X^T)^T.
        P_now = lu_solve(self._lu_c, (F1 - F2 / h).T, trans=1).T
        P_next = lu_solve(self._lu_c, (F2 / h).T, trans=1).T
        return _ExpmFactors(phi, np.ascontiguousarray(P_now),
                            np.ascontiguousarray(P_next))

    @property
    def expm_cache_hits(self) -> int:
        """Alias for :attr:`cache_hits` (metrics naming)."""
        return self.cache_hits

    def step(self, x: np.ndarray, t: float) -> np.ndarray:
        """Advance from time ``t`` to ``t + h``."""
        fac = self._fac
        b_now = np.asarray(self.system.source(t), dtype=float)
        b_next = np.asarray(self.system.source(t + self.h), dtype=float)
        y = fac.phi @ x
        y += fac.P_now @ b_now
        y += fac.P_next @ b_next
        if not np.all(np.isfinite(y)):
            error = SolverError(
                f"non-finite right-hand side at t={t:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = t
            raise error
        return y

    def step_window(self, x: np.ndarray, h_values: np.ndarray,
                    b_next: np.ndarray,
                    b_now: Optional[np.ndarray] = None,
                    times: Optional[np.ndarray] = None) -> np.ndarray:
        """Window counterpart of :meth:`step` (see
        :meth:`LinearStepper.step_window`); ``b_now`` is required."""
        steps = len(h_values)
        states = np.empty((steps, self.system.n))
        x = np.asarray(x, dtype=float)
        h_list = h_values.tolist() if isinstance(h_values, np.ndarray) \
            else list(h_values)
        h_cur = self.h
        fac = self._fac
        for k in range(steps):
            hk = h_list[k]
            if hk != h_cur:
                self.set_timestep(hk)
                h_cur = hk
                fac = self._fac
            y = fac.phi @ x
            y += fac.P_now @ b_now[k]
            y += fac.P_next @ b_next[k]
            x = y
            states[k] = x
        if not np.all(np.isfinite(states)):
            bad = int(np.argwhere(
                ~np.isfinite(states).all(axis=1)
            )[0][0])
            t_bad = float(times[bad]) if times is not None else float("nan")
            error = SolverError(
                f"non-finite right-hand side at t={t_bad:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = t_bad
            raise error
        return states

    def step_block(self, x: np.ndarray, times: np.ndarray,
                   mode: str = "exact") -> np.ndarray:
        """Advance through ``len(times)`` consecutive fixed-size steps
        (``times[k]`` is the start of step ``k``).  ``mode`` is accepted
        for interface compatibility; both modes are identical here."""
        if mode not in ("exact", "fused"):
            raise SolverError(
                f"unknown step_block mode {mode!r}; "
                "expected 'exact' or 'fused'"
            )
        times = np.atleast_1d(np.asarray(times, dtype=float))
        h = self.h
        b_now = self.system.eval_source_block(times)
        b_next = self.system.eval_source_block(times + h)
        h_values = np.full(len(times), h)
        return self.step_window(x, h_values, b_next, b_now, times)


def make_stepper(system: LinearDae, h: float,
                 method: str = "trapezoidal",
                 variant: str = "auto"):
    """Construct the stepper for ``variant`` (the solver-variant API).

    ``"auto"`` picks dense vs sparse from the system representation and
    size; ``"expm"`` selects the exact LTI propagator (which requires an
    invertible ``C``).
    """
    if variant not in STEPPER_VARIANTS:
        raise SolverError(
            f"unknown solver variant {variant!r}; "
            f"expected one of {sorted(STEPPER_VARIANTS)}"
        )
    if variant == "expm":
        return ExpmStepper(system, h)
    return LinearStepper(system, h, method, variant)


def state_space_to_dae(
    A: np.ndarray,
    B: np.ndarray,
    u: Callable[[float], np.ndarray],
    C_out: Optional[np.ndarray] = None,
) -> LinearDae:
    """Wrap a state-space model ``x' = A x + B u(t)`` as a LinearDae.

    The DAE form is ``I x' - A x = B u(t)``.  ``C_out`` is not part of the
    DAE; output selection is applied by the caller on the state vector.
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    n = A.shape[0]
    if B.shape[0] != n:
        raise SolverError(f"B has {B.shape[0]} rows; expected {n}")

    def source(t: float) -> np.ndarray:
        return B @ np.atleast_1d(np.asarray(u(t), dtype=float))

    return LinearDae(np.eye(n), -A, source)
