"""Linear DAE systems and their fixed-timestep solution.

The paper's Phase 1 requires a "linear dynamic continuous-time MoC" with
fixed-timestep time-domain simulation.  Systems have the standard
linear-network / state-space form

    C * dx/dt + G * x = b(t)

where ``C`` may be singular (a genuine DAE, as produced by Modified Nodal
Analysis of an electrical network) and ``b`` collects the independent
sources.  Because the system is linear, each timestep is one solve with a
constant matrix — "the resulting system of equations can be solved without
iterations" — and the matrix is LU-factorized once per timestep value.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..core.errors import SolverError

#: Supported fixed-step integration methods and their theoretical orders.
METHOD_ORDERS = {"backward_euler": 1, "trapezoidal": 2}


class LinearDae:
    """A linear differential-algebraic system ``C x' + G x = b(t)``."""

    def __init__(
        self,
        C: np.ndarray,
        G: np.ndarray,
        source: Optional[Callable[[float], np.ndarray]] = None,
        names: Optional[Sequence[str]] = None,
    ):
        self.C = np.asarray(C, dtype=float)
        self.G = np.asarray(G, dtype=float)
        n = self.G.shape[0]
        if self.C.shape != (n, n) or self.G.shape != (n, n):
            raise SolverError(
                f"inconsistent system shapes C{self.C.shape} G{self.G.shape}"
            )
        self.n = n
        self.source = source or (lambda t: np.zeros(n))
        self.names = list(names) if names else [f"x{i}" for i in range(n)]

    # -- static analyses --------------------------------------------------------

    def dc(self) -> np.ndarray:
        """DC operating point: solve ``G x = b(0)`` (derivatives zero)."""
        b = np.asarray(self.source(0.0), dtype=float)
        try:
            return np.linalg.solve(self.G, b)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                "singular conductance matrix in DC analysis; the network "
                "likely has a floating node or an inductor loop"
            ) from exc

    def ac(self, frequencies: np.ndarray,
           b_ac: Optional[np.ndarray] = None) -> np.ndarray:
        """Small-signal frequency-domain analysis.

        Solves ``(G + j*2*pi*f*C) X = b_ac`` for each frequency.  Returns a
        complex array of shape ``(len(frequencies), n)``.  ``b_ac`` defaults
        to the source vector at t=0 interpreted as a unit-phasor excitation
        pattern.
        """
        freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
        if b_ac is None:
            b_ac = np.asarray(self.source(0.0), dtype=float).copy()
        # Stack (G + j*2*pi*f*C) for all frequencies and solve the whole
        # batch in one LAPACK call instead of a Python loop.
        A = (self.G[None, :, :]
             + 2j * np.pi * freqs[:, None, None] * self.C[None, :, :])
        rhs = np.broadcast_to(
            np.asarray(b_ac, dtype=complex)[None, :, None],
            (len(freqs), self.n, 1),
        )
        try:
            return np.linalg.solve(A, rhs)[:, :, 0]
        except np.linalg.LinAlgError:
            # Batched solve reports failure for the whole stack; redo
            # frequency by frequency to name the singular one.
            for f, A_f in zip(freqs, A):
                try:
                    np.linalg.solve(A_f, np.asarray(b_ac, dtype=complex))
                except np.linalg.LinAlgError as exc:
                    raise SolverError(
                        f"singular system matrix in AC analysis at f={f}"
                    ) from exc
            raise SolverError("singular system matrix in AC analysis")

    # -- transient -----------------------------------------------------------------

    def eval_source_block(self, times: np.ndarray) -> np.ndarray:
        """Source vectors for many time points: shape (len(times), n).

        Each row equals ``source(t)`` exactly (the source callable is
        still invoked once per time point — arbitrary Python callables
        cannot be batched safely — but callers get one contiguous array
        to slice instead of issuing interleaved calls).
        """
        times = np.atleast_1d(np.asarray(times, dtype=float))
        out = np.empty((len(times), self.n))
        for k in range(len(times)):
            out[k] = self.source(times[k])
        return out

    def transient(
        self,
        t_end: float,
        h: float,
        x0: Optional[np.ndarray] = None,
        t0: float = 0.0,
        method: str = "trapezoidal",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fixed-step time-domain simulation.

        Returns ``(times, states)`` with ``states[k]`` the solution at
        ``times[k]``; ``times[0] == t0`` holds the initial condition
        (default: the DC operating point).
        """
        stepper = LinearStepper(self, h, method)
        x = self.dc() if x0 is None else np.asarray(x0, dtype=float)
        steps = int(round((t_end - t0) / h))
        times = t0 + h * np.arange(steps + 1)
        states = np.empty((steps + 1, self.n))
        states[0] = x
        if steps:
            states[1:] = stepper.step_block(x, times[:steps])
        return times, states


class LinearStepper:
    """Reusable one-step integrator for a :class:`LinearDae`.

    Factorizes the iteration matrix once; re-factorizes only when the
    timestep changes.  This is the object the synchronization layer drives
    timestep by timestep in lockstep with a TDF cluster.
    """

    def __init__(self, system: LinearDae, h: float,
                 method: str = "trapezoidal"):
        if method not in METHOD_ORDERS:
            raise SolverError(
                f"unknown integration method {method!r}; "
                f"expected one of {sorted(METHOD_ORDERS)}"
            )
        if h <= 0:
            raise SolverError(f"timestep must be positive, got {h}")
        self.system = system
        self.method = method
        self.h = h
        self._factorization = None
        self._prepare()

    def _prepare(self) -> None:
        C, G, h = self.system.C, self.system.G, self.h
        if self.method == "backward_euler":
            A = C / h + G
        else:  # trapezoidal
            A = 2.0 * C / h + G
        try:
            with warnings.catch_warnings():
                # lu_factor reports exact singularity through a
                # LinAlgWarning and zero pivots instead of raising;
                # promote it to a deterministic SolverError so fallback
                # tiers see the failure at factorization time.
                warnings.simplefilter("error")
                self._factorization = lu_factor(A)
        except ValueError as exc:
            raise SolverError("cannot factorize iteration matrix") from exc
        except Warning as exc:
            raise SolverError(
                f"iteration matrix is singular for h={h:.3e}"
            ) from exc
        if not np.all(np.isfinite(self._factorization[0])):
            raise SolverError(
                f"iteration matrix is singular for h={h:.3e}"
            )

    def set_timestep(self, h: float) -> None:
        if h != self.h:
            if h <= 0:
                raise SolverError(f"timestep must be positive, got {h}")
            self.h = h
            self._prepare()

    def step(self, x: np.ndarray, t: float) -> np.ndarray:
        """Advance from time ``t`` to ``t + h``."""
        C, h = self.system.C, self.h
        b_next = np.asarray(self.system.source(t + h), dtype=float)
        if self.method == "backward_euler":
            rhs = C @ x / h + b_next
        else:
            b_now = np.asarray(self.system.source(t), dtype=float)
            rhs = (2.0 * C / h - self.system.G) @ x + b_next + b_now
        if not np.all(np.isfinite(rhs)):
            error = SolverError(
                f"non-finite right-hand side at t={t:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = t
            raise error
        return lu_solve(self._factorization, rhs)

    def step_block(self, x: np.ndarray, times: np.ndarray,
                   mode: str = "exact") -> np.ndarray:
        """Advance through ``len(times)`` consecutive steps at once.

        ``times[k]`` is the start time of step ``k`` (so the step
        advances to ``times[k] + h``); returns the states *after* each
        step as shape ``(len(times), n)``.  All source vectors are
        evaluated up front in one batch; the state recurrence itself is
        inherently sequential, so the per-step work differs by mode:

        * ``"exact"`` (default) — replays the scalar :meth:`step`
          arithmetic per step and is bit-identical to a Python loop of
          ``step`` calls, while amortizing source evaluation and
          attribute lookups over the whole block.
        * ``"fused"`` — performs a single multi-RHS ``lu_solve`` for
          all source terms plus one for the state-propagation matrix,
          reducing the loop to one mat-vec per step.  Algebraically
          identical but associates the solves differently, so results
          may differ from scalar stepping at round-off (ULP) level.
        """
        if mode not in ("exact", "fused"):
            raise SolverError(
                f"unknown step_block mode {mode!r}; "
                "expected 'exact' or 'fused'"
            )
        times = np.atleast_1d(np.asarray(times, dtype=float))
        steps = len(times)
        system, h, fact = self.system, self.h, self._factorization
        C = system.C
        states = np.empty((steps, system.n))
        x = np.asarray(x, dtype=float)
        b_next = system.eval_source_block(times + h)
        if self.method == "backward_euler":
            b_total = b_next
        else:
            M = 2.0 * C / h - system.G
            b_now = system.eval_source_block(times)
        if mode == "exact":
            for k in range(steps):
                if self.method == "backward_euler":
                    rhs = C @ x / h + b_next[k]
                else:
                    rhs = M @ x + b_next[k] + b_now[k]
                if not np.all(np.isfinite(rhs)):
                    error = SolverError(
                        f"non-finite right-hand side at "
                        f"t={times[k]:.6e} (NaN/Inf source or state)"
                    )
                    error.time_point = float(times[k])
                    raise error
                x = lu_solve(fact, rhs)
                states[k] = x
            return states
        # fused: q_k = A^-1 b_k for every step in one multi-RHS solve,
        # P = A^-1 M once, then x_{k+1} = P x_k + q_k.
        if self.method == "backward_euler":
            P = lu_solve(fact, C / h)
        else:
            P = lu_solve(fact, M)
            b_total = b_next + b_now
        if not np.all(np.isfinite(b_total)):
            bad = int(np.argwhere(
                ~np.isfinite(b_total).all(axis=1)
            )[0][0])
            error = SolverError(
                f"non-finite right-hand side at t={times[bad]:.6e} "
                "(NaN/Inf source or state)"
            )
            error.time_point = float(times[bad])
            raise error
        Q = lu_solve(fact, b_total.T).T
        for k in range(steps):
            x = P @ x + Q[k]
            states[k] = x
        if not np.all(np.isfinite(states)):
            raise SolverError("non-finite state in fused block step")
        return states


def state_space_to_dae(
    A: np.ndarray,
    B: np.ndarray,
    u: Callable[[float], np.ndarray],
    C_out: Optional[np.ndarray] = None,
) -> LinearDae:
    """Wrap a state-space model ``x' = A x + B u(t)`` as a LinearDae.

    The DAE form is ``I x' - A x = B u(t)``.  ``C_out`` is not part of the
    DAE; output selection is applied by the caller on the state vector.
    """
    A = np.atleast_2d(np.asarray(A, dtype=float))
    B = np.atleast_2d(np.asarray(B, dtype=float))
    n = A.shape[0]
    if B.shape[0] != n:
        raise SolverError(f"B has {B.shape[0]} rows; expected {n}")

    def source(t: float) -> np.ndarray:
        return B @ np.atleast_1d(np.asarray(u(t), dtype=float))

    return LinearDae(np.eye(n), -A, source)
