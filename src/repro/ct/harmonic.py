"""Single-tone harmonic balance: large-signal periodic steady state.

The paper's Phase 2 requires "frequency-domain simulation" beyond small
-signal AC — the "large-signal nonlinear frequency-domain analyses" of
its Section 3 taxonomy (Kundert's RF methods [12]).  This module solves
for the periodic steady state of a :class:`NonlinearSystem` driven at a
known fundamental, directly in the frequency domain:

The unknown is the truncated Fourier series of every state variable
(DC + K harmonics).  Collocation on 2K+1 (oversampled) time points turns
the DAE residual

    d/dt q(x(t)) + f(x(t), t) = 0

into an algebraic system in the Fourier coefficients: differentiation is
exact (multiplication by ``j*k*w``) and the nonlinear terms are
evaluated in the time domain and transformed back (the standard
HB "FFT sandwich").  Newton with a finite-difference Jacobian suffices
for the small systems this framework targets.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import ConvergenceError, SolverError
from .nonlinear import NonlinearSystem, dc_operating_point, newton


class HarmonicBalanceResult:
    """Fourier-domain periodic steady state."""

    def __init__(self, fundamental: float, coefficients: np.ndarray,
                 times: np.ndarray, waveforms: np.ndarray,
                 iterations: int):
        #: fundamental frequency [Hz].
        self.fundamental = fundamental
        #: complex spectrum, shape (K+1, n): row k is harmonic k.
        self.coefficients = coefficients
        #: collocation time points over one period.
        self.times = times
        #: time-domain waveforms at the collocation points, shape (T, n).
        self.waveforms = waveforms
        self.iterations = iterations

    def harmonic(self, k: int, state: int = 0) -> complex:
        """Complex amplitude of harmonic ``k`` (peak convention)."""
        return complex(self.coefficients[k, state])

    def magnitude(self, k: int, state: int = 0) -> float:
        return abs(self.harmonic(k, state))

    def thd(self, state: int = 0) -> float:
        """Total harmonic distortion of a state (power ratio)."""
        fundamental = self.magnitude(1, state)
        if fundamental == 0:
            raise SolverError("no fundamental content in this state")
        harmonics = sum(self.magnitude(k, state) ** 2
                        for k in range(2, self.coefficients.shape[0]))
        return np.sqrt(harmonics) / fundamental

    def evaluate(self, t: np.ndarray, state: int = 0) -> np.ndarray:
        """Reconstruct the waveform at arbitrary times."""
        t = np.asarray(t, dtype=float)
        w = 2 * np.pi * self.fundamental
        out = np.full_like(t, self.coefficients[0, state].real)
        for k in range(1, self.coefficients.shape[0]):
            c = self.coefficients[k, state]
            out = out + c.real * np.cos(k * w * t) \
                - c.imag * np.sin(k * w * t)
        return out


def harmonic_balance(
    system: NonlinearSystem,
    fundamental: float,
    harmonics: int = 7,
    oversample: int = 4,
    x0_guess: Optional[np.ndarray] = None,
    abstol: float = 1e-9,
    max_iterations: int = 80,
) -> HarmonicBalanceResult:
    """Solve for the periodic steady state at ``fundamental`` Hz.

    The system's ``static(x, t)`` must be periodic in ``t`` with the
    fundamental period (i.e. all sources are harmonics of it).

    Real-coefficient parameterization per state: ``a_0`` plus
    ``(a_k, b_k)`` for ``x(t) = a_0 + sum a_k cos(kwt) - b_k sin(kwt)``.
    """
    if fundamental <= 0:
        raise SolverError("fundamental frequency must be positive")
    if harmonics < 1:
        raise SolverError("need at least one harmonic")
    n = system.n
    K = harmonics
    T = oversample * (2 * K + 1)
    period = 1.0 / fundamental
    times = period * np.arange(T) / T
    w = 2 * np.pi * fundamental

    # Fourier synthesis/analysis matrices (real parameterization).
    # columns: [a0, a1, b1, a2, b2, ...] -> values at collocation times.
    n_coeff = 2 * K + 1
    synth = np.empty((T, n_coeff))
    synth[:, 0] = 1.0
    d_synth = np.zeros((T, n_coeff))
    for k in range(1, K + 1):
        c = np.cos(k * w * times)
        s = np.sin(k * w * times)
        synth[:, 2 * k - 1] = c
        synth[:, 2 * k] = -s
        d_synth[:, 2 * k - 1] = -k * w * s
        d_synth[:, 2 * k] = -k * w * c
    # Least-squares analysis (pseudo-inverse maps samples -> coeffs).
    analysis = np.linalg.pinv(synth)

    def unpack(z: np.ndarray) -> np.ndarray:
        """Coefficient vector -> (T, n) waveforms."""
        return synth @ z.reshape(n_coeff, n, order="F")

    def residual(z: np.ndarray) -> np.ndarray:
        coeffs = z.reshape(n_coeff, n, order="F")
        x_t = synth @ coeffs          # (T, n)
        # Time-domain residual: d/dt q(x) + f(x, t).
        # d/dt q = C(x(t)) * x'(t) with x' from exact differentiation.
        xdot_t = d_synth @ coeffs
        r_t = np.empty((T, n))
        for i in range(T):
            cq = system.charge_jacobian(x_t[i])
            r_t[i] = cq @ xdot_t[i] + system.static(x_t[i], times[i])
        # Project back onto the harmonic space (Galerkin).
        return (analysis @ r_t).reshape(-1, order="F")

    # Initial guess: DC operating point at t=0 in the a0 slots.
    z0 = np.zeros(n_coeff * n)
    if x0_guess is not None:
        z0[:] = np.asarray(x0_guess, dtype=float)
    else:
        try:
            x_dc = dc_operating_point(system, t=0.0)
        except ConvergenceError:
            x_dc = system.initial_guess()
        coeffs0 = np.zeros((n_coeff, n))
        coeffs0[0] = x_dc
        z0 = coeffs0.reshape(-1, order="F")

    def jacobian(z: np.ndarray) -> np.ndarray:
        # Analytic Galerkin Jacobian: project the per-timepoint
        # linearizations (C(x_i), G(x_i, t_i)) onto the harmonic basis.
        # For state-dependent charge Jacobians this omits the
        # dC/dx * x' term (a quasi-Newton approximation that still
        # converges; the residual itself stays exact).
        coeffs = z.reshape(n_coeff, n, order="F")
        x_t = synth @ coeffs
        jac = np.zeros((n_coeff * n, n_coeff * n))
        for i in range(T):
            cq = system.charge_jacobian(x_t[i])
            g = system.static_jacobian(x_t[i], times[i])
            jac += np.kron(cq, np.outer(analysis[:, i], d_synth[i]))
            jac += np.kron(g, np.outer(analysis[:, i], synth[i]))
        return jac

    z, iterations = newton(residual, jacobian, z0, abstol=abstol,
                           max_iterations=max_iterations)
    coeffs = z.reshape(n_coeff, n, order="F")
    # Convert to complex harmonic amplitudes: X_k = a_k + j*b_k.
    spectrum = np.zeros((K + 1, n), dtype=complex)
    spectrum[0] = coeffs[0]
    for k in range(1, K + 1):
        spectrum[k] = coeffs[2 * k - 1] + 1j * coeffs[2 * k]
    waveforms = unpack(z)
    return HarmonicBalanceResult(fundamental, spectrum, times,
                                 waveforms, iterations)
