"""Threshold-crossing detection for continuous waveforms.

The synchronization layer uses these helpers to convert continuous-time
behaviour into discrete events (comparators, zero-cross detectors,
switch-mode controllers): crossings are localized between solver
timepoints by interpolation or bisection.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

RISING = "rising"
FALLING = "falling"
EITHER = "either"


def linear_crossing(
    t0: float, v0: float, t1: float, v1: float,
    threshold: float, direction: str = EITHER,
) -> Optional[float]:
    """Crossing time of the segment (t0,v0)-(t1,v1) through ``threshold``.

    Returns None when the segment does not cross (or only touches from
    the disallowed direction).  A sample landing exactly on the threshold
    counts as a crossing at that sample.
    """
    d0, d1 = v0 - threshold, v1 - threshold
    if d0 == 0.0 and d1 == 0.0:
        return None
    rising = d0 < d1
    if direction == RISING and not rising:
        return None
    if direction == FALLING and rising:
        return None
    if d0 == 0.0:
        return None  # crossing was already reported at the previous sample
    if d1 == 0.0:
        return t1
    if (d0 > 0) == (d1 > 0):
        return None
    fraction = d0 / (d0 - d1)
    return t0 + fraction * (t1 - t0)


def refine_crossing(
    waveform: Callable[[float], float],
    t_lo: float,
    t_hi: float,
    threshold: float = 0.0,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Bisection localization of a sign change of ``waveform - threshold``.

    ``waveform(t_lo)`` and ``waveform(t_hi)`` must bracket the threshold.
    """
    f_lo = waveform(t_lo) - threshold
    f_hi = waveform(t_hi) - threshold
    if f_lo == 0.0:
        return t_lo
    if f_hi == 0.0:
        return t_hi
    if (f_lo > 0) == (f_hi > 0):
        raise ValueError(
            f"interval [{t_lo}, {t_hi}] does not bracket threshold "
            f"{threshold}"
        )
    for _ in range(max_iterations):
        t_mid = 0.5 * (t_lo + t_hi)
        f_mid = waveform(t_mid) - threshold
        if f_mid == 0.0 or (t_hi - t_lo) < tolerance:
            return t_mid
        if (f_mid > 0) == (f_lo > 0):
            t_lo, f_lo = t_mid, f_mid
        else:
            t_hi, f_hi = t_mid, f_mid
    return 0.5 * (t_lo + t_hi)


class CrossingDetector:
    """Streaming detector fed sample-by-sample by a solver loop."""

    def __init__(self, threshold: float, direction: str = EITHER):
        if direction not in (RISING, FALLING, EITHER):
            raise ValueError(f"unknown direction {direction!r}")
        self.threshold = threshold
        self.direction = direction
        self._last: Optional[tuple[float, float]] = None
        self.crossings: list[float] = []

    def feed(self, t: float, v: float) -> Optional[float]:
        """Record a sample; return a crossing time if one occurred."""
        crossing = None
        if self._last is not None:
            t0, v0 = self._last
            crossing = linear_crossing(
                t0, v0, t, v, self.threshold, self.direction
            )
            if crossing is not None:
                self.crossings.append(crossing)
        self._last = (t, v)
        return crossing

    def reset(self) -> None:
        self._last = None
        self.crossings = []


def sampled_crossings(
    times: np.ndarray,
    values: np.ndarray,
    threshold: float = 0.0,
    direction: str = EITHER,
) -> np.ndarray:
    """All interpolated crossing times of a sampled waveform."""
    detector = CrossingDetector(threshold, direction)
    for t, v in zip(np.asarray(times), np.asarray(values)):
        detector.feed(float(t), float(v))
    return np.asarray(detector.crossings)
