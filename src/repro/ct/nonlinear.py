"""Nonlinear DAE systems, Newton iteration, and variable-timestep
transient analysis (the paper's Phase 2 solver requirements).

Systems are stated in charge/flux form, the native output of nonlinear
circuit stamping:

    d/dt q(x) + f(x, t) = 0

where ``q`` collects charges/fluxes (possibly constant-zero rows for
purely algebraic unknowns — an index-1 DAE) and ``f`` collects resistive
currents minus sources.  Discretization by backward Euler or the
trapezoidal rule yields a nonlinear algebraic system per step, solved by
damped Newton; the embedded BE/TRAP pair provides the local truncation
error estimate that drives the variable-step controller.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.errors import ConvergenceError, SolverError


class NonlinearSystem:
    """Interface for nonlinear DAE systems in charge form.

    Subclasses implement the four model evaluations.  The default
    implementations make a purely static (resistive) system.
    """

    def __init__(self, n: int):
        self.n = n

    def charge(self, x: np.ndarray) -> np.ndarray:
        """q(x) — the dynamic part."""
        return np.zeros(self.n)

    def charge_jacobian(self, x: np.ndarray) -> np.ndarray:
        """dq/dx — the (incremental) capacitance matrix."""
        return np.zeros((self.n, self.n))

    def static(self, x: np.ndarray, t: float) -> np.ndarray:
        """f(x, t) — resistive currents minus sources."""
        raise NotImplementedError

    def static_jacobian(self, x: np.ndarray, t: float) -> np.ndarray:
        """df/dx — the (incremental) conductance matrix."""
        raise NotImplementedError

    def initial_guess(self) -> np.ndarray:
        return np.zeros(self.n)


class FunctionSystem(NonlinearSystem):
    """Adapter building a :class:`NonlinearSystem` from plain callables.

    This realizes the paper's *equation interface*: "allow a user to
    formulate behavioral models ... as a set of DAEs".  Jacobians default
    to forward-difference approximations.
    """

    def __init__(
        self,
        n: int,
        static: Callable[[np.ndarray, float], np.ndarray],
        charge: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        static_jacobian: Optional[Callable] = None,
        charge_jacobian: Optional[Callable] = None,
        x0: Optional[np.ndarray] = None,
    ):
        super().__init__(n)
        self._static = static
        self._charge = charge or (lambda x: np.zeros(n))
        self._static_jac = static_jacobian
        self._charge_jac = charge_jacobian
        self._x0 = np.zeros(n) if x0 is None else np.asarray(x0, dtype=float)

    def charge(self, x):
        return np.asarray(self._charge(x), dtype=float)

    def charge_jacobian(self, x):
        if self._charge_jac is not None:
            return np.asarray(self._charge_jac(x), dtype=float)
        return numeric_jacobian(self._charge, x)

    def static(self, x, t):
        return np.asarray(self._static(x, t), dtype=float)

    def static_jacobian(self, x, t):
        if self._static_jac is not None:
            return np.asarray(self._static_jac(x, t), dtype=float)
        return numeric_jacobian(lambda v: self._static(v, t), x)

    def initial_guess(self):
        return self._x0.copy()


def limexp(x, threshold: float = 80.0):
    """Linearized exponential (SPICE's ``limexp``).

    Equal to ``exp(x)`` below the threshold; continues linearly (with a
    continuous first derivative) above it.  Hard clipping would zero the
    gradient and stall Newton; the linear continuation keeps the Newton
    step informative for arbitrarily bad iterates.
    """
    x = np.asarray(x, dtype=float)
    clipped = np.minimum(x, threshold)
    base = np.exp(clipped)
    result = np.where(x > threshold, base * (1.0 + x - threshold), base)
    if result.ndim == 0:
        return float(result)
    return result


def dlimexp(x, threshold: float = 80.0):
    """Derivative of :func:`limexp`."""
    x = np.asarray(x, dtype=float)
    result = np.exp(np.minimum(x, threshold))
    if result.ndim == 0:
        return float(result)
    return result


def numeric_jacobian(func: Callable[[np.ndarray], np.ndarray],
                     x: np.ndarray, eps: float = 1e-7) -> np.ndarray:
    """Forward-difference Jacobian of ``func`` at ``x``."""
    x = np.asarray(x, dtype=float)
    f0 = np.asarray(func(x), dtype=float)
    jac = np.empty((f0.size, x.size))
    for j in range(x.size):
        step = eps * max(1.0, abs(x[j]))
        xp = x.copy()
        xp[j] += step
        jac[:, j] = (np.asarray(func(xp), dtype=float) - f0) / step
    return jac


def newton(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    abstol: float = 1e-10,
    reltol: float = 1e-9,
    max_iterations: int = 60,
    damping: bool = True,
) -> tuple[np.ndarray, int]:
    """Damped Newton-Raphson.

    Returns ``(solution, iterations)``.  Raises
    :class:`~repro.core.errors.ConvergenceError` on failure.  With
    ``damping``, the step is halved (up to 16 times) whenever the residual
    norm would not decrease — the standard globalization for diode-style
    exponential nonlinearities.
    """
    x = np.asarray(x0, dtype=float).copy()
    # Divergence probes legitimately evaluate residuals at terrible
    # iterates (overflow to inf, nan); the guards below treat non-finite
    # norms as "reject" explicitly, so silence the intermediate warnings.
    with np.errstate(over="ignore", invalid="ignore"):
        f = np.asarray(residual(x), dtype=float)
        fnorm = float(np.linalg.norm(f))
        history = [fnorm]
        stagnant = 0
        for iteration in range(1, max_iterations + 1):
            jac = np.asarray(jacobian(x), dtype=float)
            try:
                dx = np.linalg.solve(jac, -f)
            except np.linalg.LinAlgError:
                dx, *_ = np.linalg.lstsq(jac, -f, rcond=None)
            if not np.all(np.isfinite(dx)):
                break  # Jacobian produced no usable direction
            scale = 1.0
            for _ in range(16 if damping else 1):
                x_new = x + scale * dx
                f_new = np.asarray(residual(x_new), dtype=float)
                fnorm_new = float(np.linalg.norm(f_new))
                if np.isfinite(fnorm_new) and (fnorm_new < fnorm
                                               or not damping):
                    break
                scale *= 0.5
            else:
                x_new = x + dx
                f_new = np.asarray(residual(x_new), dtype=float)
                fnorm_new = float(np.linalg.norm(f_new))
            step_small = np.linalg.norm(scale * dx) <= (
                abstol + reltol * max(np.linalg.norm(x), 1.0)
            )
            stagnant = stagnant + 1 if fnorm_new > 0.5 * fnorm else 0
            x, f, fnorm = x_new, f_new, fnorm_new
            history.append(fnorm)
            # A small step alone is not convergence (a singular Jacobian
            # can stall with a large residual); require the residual to
            # be small too, with a relaxed threshold for the step-based
            # criterion.
            if fnorm <= abstol or (step_small and fnorm <= 1e4 * abstol):
                return x, iteration
            # Stagnation acceptance: finite-difference Jacobians (and
            # float cancellation in stiff residuals) bottom out above
            # abstol.  If the *step* is already negligible and the
            # residual has stopped improving near that floor, the iterate
            # is as good as this Jacobian can make it.  (Without
            # step_small this would accept the slow-crawl phase of damped
            # Newton on exponentials.)
            if step_small and stagnant >= 3 and fnorm <= 1e6 * abstol:
                return x, iteration
    raise ConvergenceError(
        f"Newton failed to converge after {len(history) - 1} iterations "
        f"(|F| = {fnorm:.3e})",
        iterations=len(history) - 1,
        residual_norm=fnorm,
        residual_history=history,
    )


def dc_operating_point(
    system: NonlinearSystem,
    t: float = 0.0,
    x0: Optional[np.ndarray] = None,
    gmin_stepping: bool = True,
    gmin_start: float = 1e-2,
    gmin_steps: int = 8,
    source_stepping: bool = True,
) -> np.ndarray:
    """Quiescent state: solve ``f(x, t) = 0``.

    Plain Newton is attempted first; on divergence the standard SPICE
    recovery ladder takes over: gmin stepping (a shunt conductance ``g``
    added to every unknown and reduced geometrically to zero, each
    solution seeding the next), then source stepping (ramping the
    sources from zero — see :mod:`repro.resilience.homotopy`).  The
    paper calls the consistent initial state computation a formal
    requirement of the synchronization layer; this is its workhorse.
    """
    guess = system.initial_guess() if x0 is None else np.asarray(x0, float)

    def solve_with_gmin(g: float, start: np.ndarray) -> np.ndarray:
        result, _ = newton(
            lambda x: system.static(x, t) + g * x,
            lambda x: system.static_jacobian(x, t) + g * np.eye(system.n),
            start,
        )
        return result

    try:
        return solve_with_gmin(0.0, guess)
    except ConvergenceError:
        if not (gmin_stepping or source_stepping):
            raise
    failures = []
    if gmin_stepping:
        try:
            x = guess
            for g in np.geomspace(gmin_start, gmin_start * 1e-9,
                                  gmin_steps):
                x = solve_with_gmin(g, x)
            return solve_with_gmin(0.0, x)
        except ConvergenceError as exc:
            failures.append(("gmin", exc))
    if source_stepping:
        from ..resilience.homotopy import source_stepping as _source_step

        try:
            return _source_step(system, t, guess)
        except ConvergenceError as exc:
            failures.append(("source", exc))
    chain = "; ".join(f"{name}: {exc}" for name, exc in failures)
    last = failures[-1][1]
    raise ConvergenceError(
        f"DC operating point not found, homotopy ladder exhausted "
        f"({chain})",
        iterations=getattr(last, "iterations", None),
        residual_norm=getattr(last, "residual_norm", None),
        time_point=t,
    )


class NonlinearStepper:
    """One-step BE/TRAP integrator for a :class:`NonlinearSystem`.

    The per-step Newton tolerance must sit well below the LTE
    controller's tolerance: the BE/TRAP difference used as the error
    estimate bottoms out at the Newton noise floor, and if that floor
    is comparable to the accept threshold the controller stalls
    (rejecting forever with an h-independent "error").
    """

    def __init__(self, system: NonlinearSystem, method: str = "trapezoidal",
                 newton_abstol: float = 1e-12,
                 newton_reltol: float = 1e-12,
                 homotopy: bool = False):
        if method not in ("backward_euler", "trapezoidal"):
            raise SolverError(f"unknown integration method {method!r}")
        self.system = system
        self.method = method
        self.newton_abstol = newton_abstol
        self.newton_reltol = newton_reltol
        #: retry a diverged step with residual-embedding continuation
        #: (see :func:`repro.resilience.homotopy.embedding_solve`)
        #: before giving up — slower, but rescues Newton-hostile devices.
        self.homotopy = homotopy
        self.newton_iterations = 0
        self.homotopy_steps = 0

    def step(self, x: np.ndarray, t: float, h: float) -> np.ndarray:
        """Advance the solution from ``t`` to ``t + h``."""
        if h <= 0:
            raise SolverError(f"timestep must be positive, got {h}")
        sys = self.system
        q0 = sys.charge(x)
        t1 = t + h
        if self.method == "backward_euler":
            def residual(x1):
                return (sys.charge(x1) - q0) / h + sys.static(x1, t1)

            def jacobian(x1):
                return sys.charge_jacobian(x1) / h + sys.static_jacobian(x1, t1)
        else:
            f0 = sys.static(x, t)

            def residual(x1):
                return (sys.charge(x1) - q0) / h + 0.5 * (
                    sys.static(x1, t1) + f0
                )

            def jacobian(x1):
                return sys.charge_jacobian(x1) / h + \
                    0.5 * sys.static_jacobian(x1, t1)
        try:
            x1, iterations = newton(residual, jacobian, x,
                                    abstol=self.newton_abstol,
                                    reltol=self.newton_reltol)
        except ConvergenceError as exc:
            if not self.homotopy:
                raise ConvergenceError(
                    f"{self.method} step diverged at t={t:.6e} "
                    f"(h={h:.3e}): {exc}",
                    iterations=exc.iterations,
                    residual_norm=exc.residual_norm,
                    time_point=t,
                    residual_history=exc.residual_history,
                ) from exc
            from ..resilience.homotopy import embedding_solve

            try:
                x1 = embedding_solve(
                    residual, jacobian, x,
                    newton_kwargs={"abstol": self.newton_abstol,
                                   "reltol": self.newton_reltol},
                )
                self.homotopy_steps += 1
            except ConvergenceError as exc2:
                raise ConvergenceError(
                    f"{self.method} step diverged at t={t:.6e} "
                    f"(h={h:.3e}) and the embedding homotopy stalled: "
                    f"{exc2}",
                    iterations=exc2.iterations,
                    residual_norm=exc2.residual_norm,
                    time_point=t,
                    residual_history=exc2.residual_history,
                ) from exc2
            return x1
        self.newton_iterations += iterations
        return x1


class VariableStepResult:
    """Output record of a variable-step transient run."""

    __slots__ = ("times", "states", "accepted_steps", "rejected_steps",
                 "newton_iterations")

    def __init__(self, times, states, accepted, rejected, newton_iterations):
        self.times = np.asarray(times)
        self.states = np.asarray(states)
        self.accepted_steps = accepted
        self.rejected_steps = rejected
        self.newton_iterations = newton_iterations

    def at(self, t: float) -> np.ndarray:
        """Linear interpolation of the state trajectory at ``t``."""
        return np.array([
            np.interp(t, self.times, self.states[:, j])
            for j in range(self.states.shape[1])
        ])


def variable_step_transient(
    system: NonlinearSystem,
    t_end: float,
    x0: Optional[np.ndarray] = None,
    t0: float = 0.0,
    h0: Optional[float] = None,
    h_min: Optional[float] = None,
    h_max: Optional[float] = None,
    abstol: float = 1e-6,
    reltol: float = 1e-4,
    max_steps: int = 1_000_000,
) -> VariableStepResult:
    """Adaptive-timestep transient using an embedded BE/TRAP pair.

    Each step is computed with both backward Euler (order 1) and the
    trapezoidal rule (order 2); their difference estimates the BE local
    truncation error and drives the standard step-size controller.  The
    order-2 solution is kept (local extrapolation).  This is the
    "nonlinear DAEs ... simulation using variable time steps" of Phase 2.
    """
    span = t_end - t0
    if span <= 0:
        raise SolverError("t_end must exceed t0")
    h = h0 if h0 is not None else span / 1000.0
    h_min = h_min if h_min is not None else span * 1e-12
    h_max = h_max if h_max is not None else span / 10.0
    be = NonlinearStepper(system, "backward_euler")
    trap = NonlinearStepper(system, "trapezoidal")
    if x0 is None:
        x = dc_operating_point(system, t0)
    else:
        # A user-provided x0 may violate the algebraic constraints
        # (e.g. all-zeros with a nonzero source).  One vanishing BE step
        # snaps the algebraic unknowns while differential states stay
        # put; without this the BE/TRAP error estimate never converges.
        h_snap = span * 1e-9
        x = be.step(np.asarray(x0, dtype=float), t0 - h_snap, h_snap)
    times, states = [t0], [x.copy()]
    t = t0
    accepted = rejected = 0
    consecutive_rejects = 0
    while t < t_end - 1e-15 * span:
        h = min(h, t_end - t, h_max)
        try:
            x_be = be.step(x, t, h)
            x_tr = trap.step(x, t, h)
        except ConvergenceError:
            h *= 0.25
            rejected += 1
            if h < h_min:
                raise SolverError(
                    f"timestep underflow at t={t:.6e} (h={h:.3e})"
                )
            continue
        scale = abstol + reltol * np.maximum(np.abs(x_tr), np.abs(x))
        error = np.max(np.abs(x_tr - x_be) / scale)
        if error <= 1.0:
            t += h
            x = x_tr
            times.append(t)
            states.append(x.copy())
            accepted += 1
            consecutive_rejects = 0
            if len(times) > max_steps:
                raise SolverError("variable-step transient exceeded max_steps")
        else:
            rejected += 1
            consecutive_rejects += 1
            if consecutive_rejects > 60:
                raise SolverError(
                    f"step controller stalled at t={t:.6e}: {error=:.3e} "
                    "does not shrink with h (inconsistent initial state "
                    "or discontinuous model?)"
                )
        factor = 0.9 / np.sqrt(max(error, 1e-10))
        h = float(np.clip(h * np.clip(factor, 0.2, 5.0), h_min, h_max))
    return VariableStepResult(
        times, states, accepted, rejected,
        be.newton_iterations + trap.newton_iterations,
    )
