"""The solver plug-in interface.

The paper requires SystemC-AMS to "support the coupling with existing
continuous-time simulators": an open architecture in which mature solvers
can be plugged in and synchronized with the discrete-time MoCs.  The
:class:`TransientSolver` protocol below is that architecture's contract —
the synchronization layer drives *any* implementation purely through
``initialize`` / ``advance_to``.  Three implementations are provided:

* :class:`LinearTransientSolver` — the built-in fixed-step linear engine;
* :class:`NonlinearTransientSolver` — the built-in adaptive Newton engine;
* :class:`ScipyIvpSolver` — an adapter around ``scipy.integrate.solve_ivp``
  standing in for an external, mature simulator.
"""

from __future__ import annotations

import abc
import warnings
from typing import Callable, Optional

import numpy as np
from scipy.integrate import solve_ivp
from scipy.linalg import lu_factor, lu_solve

from ..core.errors import SolverError
from .linear import LinearDae, LinearStepper, make_stepper
from .nonlinear import (
    NonlinearStepper,
    NonlinearSystem,
    dc_operating_point,
)


class TransientSolver(abc.ABC):
    """Contract every pluggable continuous-time solver fulfils."""

    #: optional :class:`~repro.resilience.health.HealthMonitor`; when
    #: installed, cooperating solvers report every accepted step.
    monitor = None

    @abc.abstractmethod
    def initialize(self, t0: float = 0.0,
                   x0: Optional[np.ndarray] = None) -> np.ndarray:
        """Compute/accept the consistent initial state; returns it."""

    @abc.abstractmethod
    def advance_to(self, t: float) -> np.ndarray:
        """Advance the internal state to time ``t`` and return it."""

    @property
    @abc.abstractmethod
    def time(self) -> float:
        """Current solver time."""

    @property
    @abc.abstractmethod
    def state(self) -> np.ndarray:
        """Current solver state vector."""

    # -- checkpoint support (see repro.resilience.checkpoint) ---------------

    def state_dict(self) -> dict:
        """Picklable snapshot of the solver's resumable state."""
        return {
            "t": float(self.time),
            "x": np.asarray(self.state, dtype=float).tolist(),
        }

    def load_state_dict(self, data: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.initialize(float(data["t"]),
                        np.asarray(data["x"], dtype=float))


class LinearTransientSolver(TransientSolver):
    """Built-in fixed-step solver for :class:`LinearDae` systems.

    ``advance_to`` divides the requested interval into an integer number
    of internal steps no larger than ``h_internal`` (defaulting to the
    sync interval itself).
    """

    def __init__(self, system: LinearDae,
                 h_internal: Optional[float] = None,
                 method: str = "trapezoidal",
                 variant: str = "auto"):
        self.system = system
        self.method = method
        self.variant = variant
        self.h_internal = h_internal
        self._stepper = None
        self._t = 0.0
        self._x = np.zeros(system.n)
        self.step_count = 0

    def rebind(self, system: LinearDae) -> None:
        """Adopt a re-assembled system (same unknown layout, new matrix
        values) without losing solver time/state — the cheap path for
        switch/topology events.  The stepper refactorizes once."""
        self.system = system
        if self._stepper is not None:
            self._stepper.rebind(system)

    def initialize(self, t0: float = 0.0, x0=None) -> np.ndarray:
        self._t = t0
        self._x = self.system.dc() if x0 is None \
            else np.asarray(x0, dtype=float)
        return self._x

    def snap_algebraic(self, h_reference: float) -> np.ndarray:
        """Consistent (re)initialization after an input discontinuity.

        Differential states must be continuous, but algebraic unknowns
        jump when a source or the topology changes discontinuously.  One
        backward-Euler step of vanishing size (``h_reference * 1e-9``)
        pins the differential states (the C/h term dominates) while the
        algebraic rows re-solve against the current source values.
        """
        h_tiny = h_reference * 1e-9
        stepper = LinearStepper(self.system, h_tiny, "backward_euler")
        self._x = stepper.step(self._x, self._t - h_tiny)
        return self._x

    def advance_to(self, t: float) -> np.ndarray:
        interval = t - self._t
        if interval < 0:
            raise SolverError("cannot advance a transient solver backwards")
        if interval == 0:
            return self._x
        budget = self.h_internal or interval
        substeps = max(1, int(np.ceil(interval / budget - 1e-12)))
        h = interval / substeps
        if self._stepper is None:
            self._stepper = make_stepper(self.system, h, self.method,
                                         self.variant)
        else:
            self._stepper.set_timestep(h)
        x = self._x
        for k in range(substeps):
            x = self._stepper.step(x, self._t + k * h)
            self.step_count += 1
            if self.monitor is not None:
                self.monitor.after_step(self._t + (k + 1) * h, x)
        self._t = t
        self._x = x
        return x

    def advance_window(self, times: np.ndarray, h_values: np.ndarray,
                       b_next: np.ndarray,
                       b_now: Optional[np.ndarray] = None) -> np.ndarray:
        """Advance through a whole window of synchronization points with
        pre-evaluated source vectors (the TDF block fast path).

        ``times[k]`` is the target time of step ``k``; ``h_values[k]``
        its step size (``times[k] - previous time``, one step per sync
        point — callers must only use this when ``h_internal`` imposes
        no substepping).  Bit-identical to ``advance_to(times[k])`` per
        point.  Returns the per-step states, shape ``(len(times), n)``.
        """
        if self._stepper is None:
            self._stepper = make_stepper(self.system, float(h_values[0]),
                                         self.method, self.variant)
        states = self._stepper.step_window(self._x, h_values,
                                           b_next, b_now, times)
        self.step_count += len(times)
        self._t = float(times[-1])
        self._x = states[-1].copy()
        return states

    @property
    def time(self) -> float:
        return self._t

    @property
    def state(self) -> np.ndarray:
        return self._x

    def state_dict(self) -> dict:
        data = super().state_dict()
        data["step_count"] = self.step_count
        return data

    def load_state_dict(self, data: dict) -> None:
        super().load_state_dict(data)
        self.step_count = int(data.get("step_count", 0))


class NonlinearTransientSolver(TransientSolver):
    """Built-in adaptive solver for :class:`NonlinearSystem` systems.

    Between synchronization points it takes variable internal steps with
    the embedded BE/TRAP error estimate, always landing exactly on the
    requested time (lockstep synchronization without backtracking).
    """

    def __init__(
        self,
        system: NonlinearSystem,
        abstol: float = 1e-8,
        reltol: float = 1e-5,
        h_min_fraction: float = 1e-12,
        h_max: Optional[float] = None,
    ):
        self.system = system
        self.abstol = abstol
        self.reltol = reltol
        self.h_min_fraction = h_min_fraction
        self.h_max = h_max
        self._be = NonlinearStepper(system, "backward_euler")
        self._trap = NonlinearStepper(system, "trapezoidal")
        self._t = 0.0
        self._x = np.zeros(system.n)
        self._h = None
        self.step_count = 0
        self.rejected_count = 0

    def initialize(self, t0: float = 0.0, x0=None) -> np.ndarray:
        self._t = t0
        self._x = dc_operating_point(self.system, t0) if x0 is None \
            else np.asarray(x0, dtype=float)
        return self._x

    def snap_algebraic(self, h_reference: float) -> np.ndarray:
        """Consistent re-initialization after an input discontinuity
        (see :meth:`LinearTransientSolver.snap_algebraic`)."""
        h_tiny = h_reference * 1e-9
        self._x = NonlinearStepper(self.system, "backward_euler").step(
            self._x, self._t - h_tiny, h_tiny
        )
        return self._x

    def advance_to(self, t: float) -> np.ndarray:
        from ..core.errors import ConvergenceError

        span = t - self._t
        if span < 0:
            raise SolverError("cannot advance a transient solver backwards")
        if span == 0:
            return self._x
        if self._h is None:
            self._h = span / 8.0
        h_min = span * self.h_min_fraction
        consecutive_rejects = 0
        while self._t < t - 1e-15 * max(abs(t), 1.0):
            h = min(self._h, t - self._t)
            if self.h_max is not None:
                h = min(h, self.h_max)
            try:
                x_be = self._be.step(self._x, self._t, h)
                x_tr = self._trap.step(self._x, self._t, h)
            except ConvergenceError as exc:
                self._h = h * 0.25
                self.rejected_count += 1
                if self._h < h_min:
                    underflow = SolverError(
                        f"timestep underflow at t={self._t:.6e} "
                        f"(h={self._h:.3e}): {exc}"
                    )
                    underflow.time_point = self._t
                    raise underflow from exc
                continue
            scale = self.abstol + self.reltol * np.maximum(
                np.abs(x_tr), np.abs(self._x)
            )
            error = float(np.max(np.abs(x_tr - x_be) / scale))
            if error <= 1.0:
                self._t += h
                self._x = x_tr
                self.step_count += 1
                consecutive_rejects = 0
                if self.monitor is not None:
                    self.monitor.record_residual(error)
                    self.monitor.after_step(self._t, self._x)
            else:
                self.rejected_count += 1
                consecutive_rejects += 1
                if consecutive_rejects > 60:
                    stalled = SolverError(
                        f"step controller stalled at t={self._t:.6e}; "
                        "error estimate does not shrink with h "
                        "(inconsistent state after a discontinuity?)"
                    )
                    stalled.time_point = self._t
                    raise stalled
            factor = 0.9 / np.sqrt(max(error, 1e-10))
            self._h = float(np.clip(h * np.clip(factor, 0.2, 5.0),
                                    h_min, span))
        self._t = t
        return self._x

    @property
    def time(self) -> float:
        return self._t

    @property
    def state(self) -> np.ndarray:
        return self._x

    def state_dict(self) -> dict:
        data = super().state_dict()
        data.update(h=self._h, step_count=self.step_count,
                    rejected_count=self.rejected_count)
        return data

    def load_state_dict(self, data: dict) -> None:
        super().load_state_dict(data)
        self._h = data.get("h")
        self.step_count = int(data.get("step_count", 0))
        self.rejected_count = int(data.get("rejected_count", 0))


class ScipyIvpSolver(TransientSolver):
    """Adapter plugging SciPy's mature IVP integrators into the framework.

    Accepts an explicit ODE right-hand side ``rhs(t, x)``, a
    :class:`LinearDae` whose ``C`` matrix is invertible (the ODE form the
    paper notes most CSSL-descendant tools support), or a charge-form
    :class:`NonlinearSystem` whose charge Jacobian is invertible
    (``dq/dx · dx/dt = -f(x, t)``).
    """

    def __init__(
        self,
        rhs: Optional[Callable[[float, np.ndarray], np.ndarray]] = None,
        linear_system: Optional[LinearDae] = None,
        nonlinear_system: Optional[NonlinearSystem] = None,
        n: Optional[int] = None,
        method: str = "LSODA",
        rtol: float = 1e-8,
        atol: float = 1e-10,
    ):
        provided = [src is not None
                    for src in (rhs, linear_system, nonlinear_system)]
        if sum(provided) != 1:
            raise SolverError(
                "provide exactly one of rhs=, linear_system= "
                "or nonlinear_system="
            )
        if linear_system is not None:
            C_mat = linear_system.C.toarray() if linear_system.is_sparse \
                else linear_system.C
            try:
                with warnings.catch_warnings():
                    # factor-and-solve instead of an explicit inverse:
                    # promote lu_factor's singularity warning so a
                    # singular C is rejected here, exactly like the old
                    # np.linalg.inv path.
                    warnings.simplefilter("error")
                    c_factors = lu_factor(C_mat)
            except (ValueError, Warning) as exc:
                raise SolverError(
                    "ScipyIvpSolver requires an invertible C matrix "
                    "(a pure ODE system); use the built-in DAE solver "
                    "for singular C"
                ) from exc
            if not np.all(np.isfinite(c_factors[0])):
                raise SolverError(
                    "ScipyIvpSolver requires an invertible C matrix "
                    "(a pure ODE system); use the built-in DAE solver "
                    "for singular C"
                )

            def rhs(t, x, _cf=c_factors, _sys=linear_system):
                return lu_solve(_cf, _sys.source(t) - _sys.G @ x)

            n = linear_system.n
        elif nonlinear_system is not None:
            probe = np.zeros(nonlinear_system.n)
            jac = np.asarray(nonlinear_system.charge_jacobian(probe),
                             dtype=float)
            if not np.isfinite(np.linalg.cond(jac)):
                raise SolverError(
                    "ScipyIvpSolver requires an invertible charge "
                    "Jacobian (a pure ODE system); use the built-in "
                    "DAE solver for algebraic constraints"
                )

            def rhs(t, x, _sys=nonlinear_system):
                return np.linalg.solve(
                    np.asarray(_sys.charge_jacobian(x), dtype=float),
                    -np.asarray(_sys.static(x, t), dtype=float),
                )

            n = nonlinear_system.n
        if n is None:
            raise SolverError("n= is required when passing a bare rhs")
        self.rhs = rhs
        self.n = n
        self.method = method
        self.rtol = rtol
        self.atol = atol
        self._linear = linear_system
        self._nonlinear = nonlinear_system
        self._t = 0.0
        self._x = np.zeros(n)
        self.segment_count = 0

    def initialize(self, t0: float = 0.0, x0=None) -> np.ndarray:
        self._t = t0
        if x0 is not None:
            self._x = np.asarray(x0, dtype=float)
        elif self._linear is not None:
            self._x = self._linear.dc()
        elif self._nonlinear is not None:
            self._x = dc_operating_point(self._nonlinear, t0)
        else:
            self._x = np.zeros(self.n)
        return self._x

    def advance_to(self, t: float) -> np.ndarray:
        if t < self._t:
            raise SolverError("cannot advance a transient solver backwards")
        if t == self._t:
            return self._x
        try:
            result = solve_ivp(
                self.rhs, (self._t, t), self._x,
                method=self.method, rtol=self.rtol, atol=self.atol,
            )
        except ValueError as exc:
            # solve_ivp rejects NaN/Inf-contaminated inputs with a bare
            # ValueError; normalize to the solver-error contract so
            # fallback chains and campaigns can classify it.
            error = SolverError(f"external solver rejected input: {exc}")
            error.time_point = self._t
            raise error from exc
        if not result.success:
            raise SolverError(
                f"external solver failed: {result.message}"
            )
        x_new = result.y[:, -1]
        if not np.all(np.isfinite(x_new)):
            # some methods (e.g. LSODA) integrate a NaN-producing RHS
            # "successfully"; refuse to adopt a non-finite state.
            error = SolverError(
                f"external solver produced non-finite state at t={t:.6e}"
            )
            error.time_point = self._t
            raise error
        self.segment_count += 1
        self._t = t
        self._x = x_new
        if self.monitor is not None:
            self.monitor.after_step(self._t, self._x)
        return self._x

    @property
    def time(self) -> float:
        return self._t

    @property
    def state(self) -> np.ndarray:
        return self._x

    def state_dict(self) -> dict:
        data = super().state_dict()
        data["segment_count"] = self.segment_count
        return data

    def load_state_dict(self, data: dict) -> None:
        super().load_state_dict(data)
        self.segment_count = int(data.get("segment_count", 0))
