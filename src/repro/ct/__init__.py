"""`repro.ct` — continuous-time models of computation.

Solvers for linear and nonlinear DAE systems with fixed and variable
timesteps, DC operating-point computation, small-signal AC and noise
analyses, threshold-crossing detection, and the plug-in API for external
solvers.
"""

from .ac import (
    ac_sweep,
    corner_frequency,
    linearize,
    magnitude_db,
    phase_deg,
    transfer_function,
)
from .harmonic import HarmonicBalanceResult, harmonic_balance
from .sweep import dc_sweep, sweep_source
from .events import (
    EITHER,
    FALLING,
    RISING,
    CrossingDetector,
    linear_crossing,
    refine_crossing,
    sampled_crossings,
)
from .linear import (
    METHOD_ORDERS,
    LinearDae,
    LinearStepper,
    state_space_to_dae,
)
from .noise import (
    BOLTZMANN,
    ELEMENTARY_CHARGE,
    NoiseSource,
    flicker_psd,
    integrated_noise,
    output_noise_psd,
    per_source_contributions,
    shot_noise_psd,
    snr_db,
    thermal_current_psd,
)
from .nonlinear import (
    FunctionSystem,
    NonlinearStepper,
    NonlinearSystem,
    VariableStepResult,
    dc_operating_point,
    newton,
    numeric_jacobian,
    variable_step_transient,
)
from .solver_api import (
    LinearTransientSolver,
    NonlinearTransientSolver,
    ScipyIvpSolver,
    TransientSolver,
)

__all__ = [
    "BOLTZMANN", "CrossingDetector", "EITHER", "ELEMENTARY_CHARGE",
    "HarmonicBalanceResult", "dc_sweep", "harmonic_balance", "sweep_source",
    "FALLING", "FunctionSystem", "LinearDae", "LinearStepper",
    "LinearTransientSolver", "METHOD_ORDERS", "NoiseSource",
    "NonlinearStepper", "NonlinearSystem", "NonlinearTransientSolver",
    "RISING", "ScipyIvpSolver", "TransientSolver", "VariableStepResult",
    "ac_sweep", "corner_frequency", "dc_operating_point", "flicker_psd",
    "integrated_noise", "linear_crossing", "linearize", "magnitude_db",
    "newton", "numeric_jacobian", "output_noise_psd",
    "per_source_contributions", "phase_deg", "refine_crossing",
    "sampled_crossings", "shot_noise_psd", "snr_db", "state_space_to_dae",
    "thermal_current_psd", "transfer_function", "variable_step_transient",
]
