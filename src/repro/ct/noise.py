"""Small-signal noise analysis.

Each noise source is a stationary random current/voltage with a known
one-sided power spectral density injected through a mapping vector into
the linear(ized) system.  The output noise PSD at an observation vector
``d`` is

    S_out(f) = sum_k |d^T (G + j*w*C)^{-1} b_k|^2 * S_k(f)

computed efficiently with one *adjoint* solve per frequency (independent
of the number of sources) — the textbook SPICE noise-analysis method the
paper groups under "static analyses ... (including noise analysis)".
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..core.errors import SolverError

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

PsdFunction = Callable[[np.ndarray], np.ndarray]


class NoiseSource:
    """A noise injection: mapping vector plus PSD function of frequency."""

    __slots__ = ("name", "vector", "psd")

    def __init__(self, name: str, vector: np.ndarray,
                 psd: Union[float, PsdFunction]):
        self.name = name
        self.vector = np.asarray(vector, dtype=float)
        if callable(psd):
            self.psd = psd
        else:
            level = float(psd)
            self.psd = lambda f, s=level: np.full_like(
                np.asarray(f, dtype=float), s
            )


def thermal_current_psd(resistance: float,
                        temperature: float = 300.0) -> float:
    """One-sided thermal (Johnson) current-noise PSD 4kT/R [A^2/Hz]."""
    if resistance <= 0:
        raise SolverError("thermal noise requires positive resistance")
    return 4.0 * BOLTZMANN * temperature / resistance


def shot_noise_psd(dc_current: float) -> float:
    """One-sided shot-noise PSD 2qI [A^2/Hz]."""
    return 2.0 * ELEMENTARY_CHARGE * abs(dc_current)


def flicker_psd(coefficient: float, exponent: float = 1.0) -> PsdFunction:
    """1/f^alpha noise PSD: ``K / f**alpha``."""

    def psd(f):
        f = np.asarray(f, dtype=float)
        return coefficient / np.maximum(f, 1e-30) ** exponent

    return psd


def output_noise_psd(
    C: np.ndarray,
    G: np.ndarray,
    sources: Sequence[NoiseSource],
    output_vector: np.ndarray,
    frequencies: np.ndarray,
) -> np.ndarray:
    """Total output noise PSD over a frequency sweep.

    Returns an array of the same length as ``frequencies``; units are the
    square of the observed quantity per hertz (e.g. V^2/Hz).
    """
    C = np.asarray(C, dtype=float)
    G = np.asarray(G, dtype=float)
    d = np.asarray(output_vector, dtype=complex)
    freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
    total = np.zeros(len(freqs))
    for k, f in enumerate(freqs):
        A = G + 2j * np.pi * f * C
        try:
            # Adjoint solve: y = A^{-T} d, then d^T A^{-1} b == y^T b.
            y = np.linalg.solve(A.T, d)
        except np.linalg.LinAlgError as exc:
            raise SolverError(
                f"singular system matrix in noise analysis at f={f}"
            ) from exc
        for source in sources:
            gain_sq = abs(y @ source.vector) ** 2
            total[k] += gain_sq * float(np.asarray(source.psd(f)))
    return total


def per_source_contributions(
    C: np.ndarray,
    G: np.ndarray,
    sources: Sequence[NoiseSource],
    output_vector: np.ndarray,
    frequencies: np.ndarray,
) -> dict[str, np.ndarray]:
    """Output-referred PSD of each source separately (for noise budgets)."""
    C = np.asarray(C, dtype=float)
    G = np.asarray(G, dtype=float)
    d = np.asarray(output_vector, dtype=complex)
    freqs = np.atleast_1d(np.asarray(frequencies, dtype=float))
    out = {s.name: np.zeros(len(freqs)) for s in sources}
    for k, f in enumerate(freqs):
        A = G + 2j * np.pi * f * C
        y = np.linalg.solve(A.T, d)
        for source in sources:
            out[source.name][k] = (
                abs(y @ source.vector) ** 2 * float(np.asarray(source.psd(f)))
            )
    return out


def integrated_noise(frequencies: np.ndarray, psd: np.ndarray) -> float:
    """Total RMS-squared noise: trapezoidal integral of the PSD."""
    return float(np.trapezoid(psd, frequencies))


def snr_db(signal_rms: float, noise_rms: float) -> float:
    """Signal-to-noise ratio in dB from RMS amplitudes."""
    if noise_rms <= 0:
        raise SolverError("noise RMS must be positive for SNR")
    return 20.0 * np.log10(signal_rms / noise_rms)
