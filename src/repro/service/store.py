"""Fleet-wide shared result store with single-flight dedup.

:class:`SharedResultStore` promotes the campaign layer's
content-addressed :class:`~repro.campaign.cache.ResultCache` to a
multi-reader / multi-writer store shared by every tenant, job and host
of one service fleet:

* **atomic publication** — inherited from the hardened cache: entries
  appear via unique-temp-file + ``os.replace``, so a concurrent reader
  sees the entry fully or not at all;
* **single-flight claims** — before computing a point, an executor
  *claims* its key by exclusively creating ``<key>.claim``
  (``O_CREAT | O_EXCL`` — the filesystem arbitrates exactly one
  winner).  Losers either subscribe to the winner's forthcoming result
  (the service's in-process follower table) or poll :meth:`get` until
  publication.  Claims carry an owner and an expiry so a crashed
  claimant never wedges a key: :meth:`try_claim` breaks stale claims
  atomically via ``os.replace`` of a fresh claim file.

The store's identity function is :func:`~repro.campaign.cache.cache_key`
— campaign name + full params (seed included) + code version + verifier
ruleset — so "identical point" means *bit-identical result*, and
cross-tenant dedup cannot change any job's aggregate.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..campaign.cache import ResultCache

#: Claims older than this are considered abandoned (crashed claimant)
#: and may be broken by the next claimant.
DEFAULT_CLAIM_TTL = 300.0


class SharedResultStore(ResultCache):
    """Multi-writer result store with single-flight claim files."""

    def __init__(self, directory, fsync: bool = False,
                 claim_ttl: float = DEFAULT_CLAIM_TTL):
        super().__init__(directory, fsync=fsync)
        self.claim_ttl = float(claim_ttl)

    # ``publish`` is the store-flavored name for atomic ``put``; it
    # also releases the publisher's claim so pollers converge fast.
    def publish(self, key: str, record, owner: str = "") -> None:
        self.put(key, record)
        self.release(key, owner=owner)

    # -- single-flight claims ------------------------------------------------

    def _claim_path(self, key: str) -> Path:
        return self.directory / f"{key}.claim"

    def try_claim(self, key: str, owner: str,
                  now: Optional[float] = None) -> bool:
        """Attempt to become the single executor for ``key``.

        Returns ``True`` when this caller holds the claim (fresh, or
        re-asserted over a stale one).  A live claim by another owner,
        or an already-published result, returns ``False``.
        """
        if key in self:
            return False
        now = time.time() if now is None else now
        payload = json.dumps({"owner": owner, "claimed_at": now,
                              "expires_at": now + self.claim_ttl})
        path = self._claim_path(key)
        try:
            fd = os.open(str(path),
                         os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            holder = self.claim_info(key)
            if holder is None:
                # claim vanished between exists-check and read: the
                # holder just published or released; treat as lost
                return False
            if holder.get("owner") == owner:
                return True
            if float(holder.get("expires_at", 0.0)) > now:
                return False
            # stale claim: atomically replace it with ours
            fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                       suffix=".claimtmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
            return True
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return True

    def claim_info(self, key: str) -> Optional[Dict[str, Any]]:
        """The live claim's ``{owner, claimed_at, expires_at}``, or
        ``None`` when the key is unclaimed."""
        try:
            text = self._claim_path(key).read_text(encoding="utf-8")
            info = json.loads(text)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return info if isinstance(info, dict) else None

    def claimed_elsewhere(self, key: str, owner: str) -> bool:
        """Is ``key`` under a live claim by a *different* owner?"""
        info = self.claim_info(key)
        if info is None or info.get("owner") == owner:
            return False
        return float(info.get("expires_at", 0.0)) > time.time()

    def release(self, key: str, owner: str = "") -> None:
        """Drop a claim.  With ``owner`` given, only that owner's claim
        is removed (a stale-claim breaker keeps its own claim)."""
        path = self._claim_path(key)
        if owner:
            info = self.claim_info(key)
            if info is not None and info.get("owner") != owner:
                return
        try:
            path.unlink()
        except FileNotFoundError:
            pass

    def clear(self) -> int:
        removed = super().clear()
        for path in self.directory.glob("*.claim"):
            path.unlink(missing_ok=True)
        return removed
