"""Remote pull-worker: lease chunks over HTTP, execute, report back.

Any host that can reach the service's port and see the campaign spec
file can contribute compute to in-flight sweeps::

    python -m repro.service worker --url http://scheduler:8321

The worker is *pull-based*: it asks the server for work sized to what
it can hold, so a faster host naturally leases more chunks and load
balances itself (work stealing without a balancer).  Crash safety is
entirely server-side — a worker that dies mid-chunk simply never
completes its lease, and the server re-queues the chunk when the lease
expires.  Completing the same chunk twice is equally harmless: the
server accepts the first completion and drops the rest.
"""

from __future__ import annotations

import logging
import os
import socket
import time
import uuid
from typing import Optional

from .client import ServiceClient, ServiceError
from .jobs import execute_chunk_by_ref, execute_chunk_traced

logger = logging.getLogger(__name__)


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-" \
           f"{uuid.uuid4().hex[:6]}"


def run_worker(url: str, worker_id: Optional[str] = None,
               poll: float = 0.25, max_idle: Optional[float] = None,
               max_chunks: Optional[int] = None,
               stop_when=None) -> int:
    """Lease/execute/complete until idle for ``max_idle`` seconds (or
    forever), or ``max_chunks`` chunks done, or ``stop_when()`` is
    true.  Returns the number of chunks completed.

    Transient HTTP failures back off and retry — the server's lease
    reaper guarantees any chunk we lost is re-queued, so the worker
    never needs local durability.
    """
    client = ServiceClient(url)
    worker = worker_id or default_worker_id()
    completed = 0
    idle_since: Optional[float] = None
    logger.info("worker %s pulling from %s", worker, url)
    while True:
        if stop_when is not None and stop_when():
            break
        if max_chunks is not None and completed >= max_chunks:
            break
        try:
            lease = client.lease(worker)
        except (ServiceError, OSError) as exc:
            logger.warning("lease failed (%s); backing off", exc)
            time.sleep(max(poll, 0.5))
            continue
        if lease is None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if max_idle is not None and now - idle_since > max_idle:
                break
            time.sleep(poll)
            continue
        idle_since = None
        tasks = [tuple(task) for task in lease["tasks"]]
        traceparent = lease.get("traceparent")
        if traceparent:
            # traced lease: run through the telemetry-collecting entry
            # and ship the spans/metrics segment back with the results
            traced = execute_chunk_traced(
                lease["spec"], tasks, lease.get("timeout"),
                traceparent=traceparent, worker=worker)
            outcomes = traced["outcomes"]
            telemetry = traced["telemetry"]
        else:
            outcomes = execute_chunk_by_ref(
                lease["spec"], tasks, lease.get("timeout"))
            telemetry = None
        try:
            result = client.complete(worker, lease["job_id"],
                                     lease["chunk_id"], outcomes,
                                     telemetry=telemetry)
            if not result.get("accepted"):
                logger.info("chunk %s already completed elsewhere",
                            lease["chunk_id"])
        except (ServiceError, OSError) as exc:
            # the reaper will re-queue the chunk; losing one completed
            # chunk costs recomputation, never correctness
            logger.warning("complete failed for chunk %s (%s)",
                           lease["chunk_id"], exc)
        completed += 1
    logger.info("worker %s exiting after %d chunk(s)", worker,
                completed)
    return completed
