"""Job, chunk and submission models for the campaign service.

A *job* is one submitted campaign: a spec reference, a tenant, a
priority, and the planned (seeded) records of every point.  A *chunk*
is the dispatch unit — a slice of a job's pending points shipped to a
local pool worker or leased to a remote worker.  Both local and remote
executors run the same entry point, :func:`execute_chunk_by_ref`,
which re-resolves the campaign from its textual spec reference inside
the worker process — the wire (and the pickle stream) carries only
strings and parameter dicts, never live callables or simulators.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..campaign.loader import resolve_spec_ref
from ..campaign.records import RunRecord
from ..campaign.runner import (
    RunTask,
    _execute_chunk,
    outcome_to_json,
)
from ..campaign.spec import Campaign
from ..observe import Telemetry
from ..observe.fleet import DEFAULT_SEGMENT_SPANS, telemetry_payload
from .queue import PRIORITIES

#: Job lifecycle states.
QUEUED, RUNNING, DONE, CANCELLED = ("queued", "running", "done",
                                    "cancelled")

#: Default points per chunk when the submitter does not choose one:
#: small enough that fair-share interleaving is fine-grained, large
#: enough to amortize process round-trips.
DEFAULT_CHUNK_SIZE = 8


class SubmitError(Exception):
    """A submission is structurally invalid (maps to HTTP 400)."""


@dataclass
class JobRequest:
    """Parsed, validated submit payload."""

    spec: str
    tenant: str = "default"
    priority: str = "normal"
    root_seed: Optional[int] = None
    limit: Optional[int] = None
    timeout: Optional[float] = None
    retries: int = 1
    chunk_size: Optional[int] = None
    description: str = ""
    #: per-job telemetry opt-out; effective only when the *server* has
    #: observability on (``serve --observe on``, the default)
    observe: bool = True

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobRequest":
        if not isinstance(payload, dict):
            raise SubmitError("submit body must be a JSON object")
        spec = payload.get("spec")
        if not spec or not isinstance(spec, str):
            raise SubmitError(
                "submit needs a 'spec' reference "
                "(\"path/to/spec.py\" or \"spec.py::campaign-name\")")
        request = cls(spec=spec)
        request.tenant = str(payload.get("tenant") or "default")
        request.priority = str(payload.get("priority") or "normal")
        if request.priority not in PRIORITIES:
            raise SubmitError(
                f"priority must be one of {list(PRIORITIES)}; "
                f"got {request.priority!r}")
        for name, caster in (("root_seed", int), ("limit", int),
                             ("timeout", float), ("chunk_size", int)):
            value = payload.get(name)
            if value is not None:
                try:
                    setattr(request, name, caster(value))
                except (TypeError, ValueError):
                    raise SubmitError(
                        f"{name} must be a number; got {value!r}")
        if request.limit is not None and request.limit < 1:
            raise SubmitError("limit must be >= 1")
        if request.chunk_size is not None and request.chunk_size < 1:
            raise SubmitError("chunk_size must be >= 1")
        retries = payload.get("retries")
        if retries is not None:
            try:
                request.retries = max(0, int(retries))
            except (TypeError, ValueError):
                raise SubmitError(f"retries must be an int; "
                                  f"got {retries!r}")
        request.description = str(payload.get("description") or "")
        request.observe = bool(payload.get("observe", True))
        return request

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec, "tenant": self.tenant,
            "priority": self.priority, "root_seed": self.root_seed,
            "limit": self.limit, "timeout": self.timeout,
            "retries": self.retries, "chunk_size": self.chunk_size,
            "description": self.description, "observe": self.observe,
        }


@dataclass
class Chunk:
    """One dispatch unit: a slice of a job's pending tasks."""

    chunk_id: str
    job_id: str
    tenant: str
    priority: str
    tasks: List[RunTask]
    state: str = "queued"          # queued | leased | done
    worker: Optional[str] = None
    deadline: Optional[float] = None   # lease expiry (monotonic)
    cancelled: bool = False
    leases: int = 0
    #: trace context for this dispatch (the job context's child),
    #: carried to executors via the lease payload / pickle stream
    traceparent: Optional[str] = None
    #: wall-clock instants bounding the queue-wait span
    created_wall: float = 0.0
    started_wall: float = 0.0

    def lease(self, worker: str, timeout: float) -> None:
        self.state = "leased"
        self.worker = worker
        self.deadline = time.monotonic() + timeout
        self.leases += 1
        self.started_wall = time.time()

    def requeue(self) -> None:
        self.state = "queued"
        self.worker = None
        self.deadline = None

    def expired(self, now: Optional[float] = None) -> bool:
        return (self.state == "leased" and self.deadline is not None
                and (now or time.monotonic()) > self.deadline)


class Job:
    """One submitted campaign and its live execution state."""

    def __init__(self, job_id: str, request: JobRequest,
                 campaign: Campaign, records: List[RunRecord],
                 keys: List[str], code_version: str):
        self.id = job_id
        self.request = request
        self.campaign = campaign
        #: canonical ``path::name`` reference workers execute by
        self.exec_ref = request.spec
        self.records = records          # index-ordered skeletons
        self.keys = keys                # cache key per record index
        self.code_version = code_version
        self.state = QUEUED
        self.submitted_at = time.time()
        self.started_monotonic: Optional[float] = None
        self.finished_monotonic: Optional[float] = None
        self.created_monotonic = time.monotonic()
        #: completion-ordered list of finalized record dicts, each
        #: tagged with a monotonically increasing ``seq``.
        self.completed: List[Dict[str, Any]] = []
        self.subscribers: List[Any] = []   # asyncio.Queue per stream
        #: fleet-observability state (set by the server at admission):
        #: the job's root trace context and the telemetry segments
        #: collected from every executor, stitched on demand into one
        #: Perfetto trace by ``GET /v1/jobs/{id}/trace``.
        self.trace_context: Optional[Any] = None
        self.segments: List[Dict[str, Any]] = []
        self.segments_dropped = 0
        self.counts: Dict[str, int] = {
            "total": len(records), "completed": 0, "ok": 0,
            "failed": 0, "cached": 0, "deduped": 0, "executed": 0,
        }
        self._chunk_seq = itertools.count(1)

    # -- structure -----------------------------------------------------------

    def next_chunk_id(self) -> str:
        return f"{self.id}/{next(self._chunk_seq)}"

    def make_chunks(self, tasks: List[RunTask],
                    chunk_size: Optional[int]) -> List[Chunk]:
        size = chunk_size or self.request.chunk_size \
            or DEFAULT_CHUNK_SIZE
        now = time.time()
        chunks = [
            Chunk(chunk_id=self.next_chunk_id(), job_id=self.id,
                  tenant=self.request.tenant,
                  priority=self.request.priority,
                  tasks=tasks[i:i + size], created_wall=now)
            for i in range(0, len(tasks), size)
        ]
        if self.trace_context is not None:
            for chunk in chunks:
                chunk.traceparent = \
                    self.trace_context.child().to_traceparent()
        return chunks

    # -- status --------------------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, CANCELLED)

    def wait_seconds(self) -> Optional[float]:
        if self.started_monotonic is None:
            return None
        return self.started_monotonic - self.created_monotonic

    def run_seconds(self) -> Optional[float]:
        if self.started_monotonic is None \
                or self.finished_monotonic is None:
            return None
        return self.finished_monotonic - self.started_monotonic

    def status(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "state": self.state,
            "campaign": self.campaign.name,
            "spec": self.request.spec,
            "tenant": self.request.tenant,
            "priority": self.request.priority,
            "submitted_at": self.submitted_at,
            "wait_seconds": self.wait_seconds(),
            "run_seconds": self.run_seconds(),
            **self.counts,
        }


def execute_chunk_by_ref(spec_ref: str, tasks: List[RunTask],
                         timeout: Optional[float]
                         ) -> List[Dict[str, Any]]:
    """Worker entry point shared by the local pool and remote hosts.

    Resolves ``spec_ref`` (memoized per process by
    :func:`~repro.core.resolve.load_module_from_path`), executes the
    chunk through the campaign runner's machinery — per-run SIGALRM
    timeout, failure classification, telemetry harvest — and returns
    JSON-safe outcome dicts.  Tasks arrive as ``(index, params,
    attempt)`` with seeds already planned into ``params``, so every
    executor produces bit-identical metrics for the same task.
    """
    campaign = resolve_spec_ref(spec_ref)
    target = (campaign.run, campaign.build, campaign.duration,
              campaign.metrics, None)
    tasks = [(int(i), dict(p), int(a)) for i, p, a in tasks]
    outcomes = _execute_chunk(target, tasks, timeout)
    return [outcome_to_json(outcome) for outcome in outcomes]


def execute_chunk_traced(spec_ref: str, tasks: List[RunTask],
                         timeout: Optional[float],
                         traceparent: Optional[str] = None,
                         worker: str = "",
                         max_spans: int = DEFAULT_SEGMENT_SPANS
                         ) -> Dict[str, Any]:
    """:func:`execute_chunk_by_ref` plus a telemetry segment.

    The executor builds a chunk-local :class:`~repro.observe.Telemetry`
    hub (so fork-pool workers, remote pull-workers and the server's own
    threads never share mutable telemetry state), runs the chunk
    through the campaign machinery with that hub installed — per-point
    ``point.run`` spans plus each point's simulation spans — and
    returns ``{"outcomes": [...], "telemetry": segment}`` where the
    segment (:func:`~repro.observe.fleet.telemetry_payload`) carries
    the spans, metrics and wall-clock epoch needed for stitching.
    """
    campaign = resolve_spec_ref(spec_ref)
    target = (campaign.run, campaign.build, campaign.duration,
              campaign.metrics, None)
    tasks = [(int(i), dict(p), int(a)) for i, p, a in tasks]
    hub = Telemetry(max_events=max_spans)
    with hub.tracer.span("chunk.run", track="chunk",
                         tasks=len(tasks)):
        outcomes = _execute_chunk(target, tasks, timeout, hub)
    return {
        "outcomes": [outcome_to_json(outcome)
                     for outcome in outcomes],
        "telemetry": telemetry_payload(hub, worker=worker,
                                       traceparent=traceparent,
                                       max_spans=max_spans),
    }
