"""Campaign service command line.

Usage::

    python -m repro.service serve  [--host H] [--port P] [--workers N]
                                   [--out DIR] [--store DIR]
                                   [--max-pending N] [--lease-timeout S]
                                   [--tenant-weight NAME=W ...]
                                   [--observe on|off]
    python -m repro.service submit SPEC[::NAME] [--url U] [--tenant T]
                                   [--priority P] [--root-seed N]
                                   [--limit N] [--timeout S]
                                   [--chunk-size N] [--watch]
    python -m repro.service status [JOB] [--url U] [--tenant T]
    python -m repro.service watch  JOB [--url U]
    python -m repro.service worker [--url U] [--id ID] [--poll S]
                                   [--max-idle S] [--max-chunks N]
    python -m repro.service metrics [--url U]
    python -m repro.service trace  JOB [--url U] [--out DIR]
    python -m repro.service usage  TENANT [--url U]
    python -m repro.service top    [--url U] [--interval S] [--once]

``serve`` runs the scheduler + local worker pool in the foreground;
``worker`` attaches any additional host to the same service; the rest
are thin wrappers over :class:`~repro.service.client.ServiceClient`.
``trace`` downloads a job's stitched Perfetto trace, ``usage`` prints
a tenant's SLO accounting, and ``top`` renders a live operator view
(queue depth, per-tenant throughput, worker leases, latency
quantiles) refreshed from the fleet endpoints.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import Any, Dict, List, Optional

from .client import ServiceClient, ServiceError

DEFAULT_URL = os.environ.get("REPRO_SERVICE_URL",
                             "http://127.0.0.1:8321")


def _parse_weights(pairs: List[str]) -> Dict[str, float]:
    weights: Dict[str, float] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise SystemExit(
                f"--tenant-weight expects NAME=WEIGHT; got {pair!r}")
        try:
            weights[name] = float(value)
        except ValueError:
            raise SystemExit(f"bad weight in {pair!r}")
    return weights


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Async campaign service: submit, monitor and "
                    "shard simulation sweeps over HTTP.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument("--workers", type=int, default=1,
                       help="local pool size (0: remote workers only)")
    serve.add_argument("--out", default=None,
                       help="directory for per-job records.jsonl")
    serve.add_argument("--store", default=None,
                       help="shared result store directory")
    serve.add_argument("--max-pending", type=int, default=100_000,
                       help="queued-point bound (backpressure)")
    serve.add_argument("--lease-timeout", type=float, default=60.0,
                       help="seconds before a leased chunk is "
                            "re-queued")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="NAME=W",
                       help="fair-share weight override (repeatable)")
    serve.add_argument("--verify", default="auto",
                       choices=("auto", "on", "off"),
                       help="submit-time static pre-flight")
    serve.add_argument("--observe", default="on",
                       choices=("on", "off"),
                       help="fleet observability: per-job trace "
                            "stitching and worker telemetry "
                            "collection")

    submit = sub.add_parser("submit", help="submit a campaign")
    submit.add_argument("spec",
                        help="spec file, optionally ::campaign-name")
    submit.add_argument("--url", default=DEFAULT_URL)
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", default="normal",
                        choices=("high", "normal", "low"))
    submit.add_argument("--root-seed", type=int, default=None)
    submit.add_argument("--limit", type=int, default=None)
    submit.add_argument("--timeout", type=float, default=None)
    submit.add_argument("--chunk-size", type=int, default=None)
    submit.add_argument("--retries", type=int, default=None)
    submit.add_argument("--watch", action="store_true",
                        help="stream points until the job finishes")

    status = sub.add_parser("status", help="job status / job list")
    status.add_argument("job", nargs="?", default=None)
    status.add_argument("--url", default=DEFAULT_URL)
    status.add_argument("--tenant", default=None)

    watch = sub.add_parser("watch", help="stream a job's points")
    watch.add_argument("job")
    watch.add_argument("--url", default=DEFAULT_URL)

    cancel = sub.add_parser("cancel", help="cancel a job")
    cancel.add_argument("job")
    cancel.add_argument("--url", default=DEFAULT_URL)

    results = sub.add_parser("results", help="aggregated results")
    results.add_argument("job")
    results.add_argument("--url", default=DEFAULT_URL)

    worker = sub.add_parser("worker",
                            help="attach this host as a worker")
    worker.add_argument("--url", default=DEFAULT_URL)
    worker.add_argument("--id", default=None)
    worker.add_argument("--poll", type=float, default=0.25)
    worker.add_argument("--max-idle", type=float, default=None,
                        help="exit after this many idle seconds")
    worker.add_argument("--max-chunks", type=int, default=None)

    metrics = sub.add_parser("metrics", help="service metrics dump")
    metrics.add_argument("--url", default=DEFAULT_URL)

    trace = sub.add_parser("trace",
                           help="download a job's stitched trace")
    trace.add_argument("job")
    trace.add_argument("--url", default=DEFAULT_URL)
    trace.add_argument("--out", default=None, metavar="DIR",
                       help="write trace.json under DIR (default: "
                            "print to stdout)")

    usage = sub.add_parser("usage",
                           help="per-tenant SLO accounting")
    usage.add_argument("tenant")
    usage.add_argument("--url", default=DEFAULT_URL)

    top = sub.add_parser("top", help="live operator view")
    top.add_argument("--url", default=DEFAULT_URL)
    top.add_argument("--interval", type=float, default=2.0,
                     help="refresh cadence in seconds")
    top.add_argument("--once", action="store_true",
                     help="render one frame and exit (scripts/CI)")

    return parser


def _spec_ref(spec: str) -> str:
    """Absolutize the file part so server and workers resolve the same
    path regardless of their working directories."""
    if "::" in spec:
        path, _, name = spec.partition("::")
        return f"{os.path.abspath(path)}::{name}"
    return os.path.abspath(spec)


def _fmt_seconds(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _render_top(client: ServiceClient) -> str:
    """One frame of the operator view, assembled from the health,
    metrics and job-list endpoints."""
    from ..observe.fleet import split_metric_key

    health = client.health()
    dump = client.metrics()
    jobs = client.jobs()
    counters = dump.get("counters", {})
    gauges = dump.get("gauges", {})
    histograms = dump.get("histograms", {})

    tenants: Dict[str, Dict[str, Any]] = {}
    for key, value in counters.items():
        name, labels = split_metric_key(key)
        tenant = labels.get("tenant")
        if tenant is None or "kind" in labels \
                or not name.startswith("service.points."):
            continue
        kind = name.rsplit(".", 1)[1]
        tenants.setdefault(tenant, {})[kind] = value
    for key, value in histograms.items():
        name, labels = split_metric_key(key)
        tenant = labels.get("tenant")
        if tenant is None or not isinstance(value, dict):
            continue
        slot = tenants.setdefault(tenant, {})
        if name == "service.point.seconds":
            slot["p50"] = value.get("p50")
            slot["p95"] = value.get("p95")
        elif name == "service.queue.wait_seconds":
            slot["wait_p95"] = value.get("p95")
    for key, value in gauges.items():
        name, labels = split_metric_key(key)
        if name == "queue.depth" and "tenant" in labels:
            tenants.setdefault(labels["tenant"], {})["depth"] = value

    lines = [
        f"repro.service top — v{health.get('version', '?')} | "
        f"jobs {health.get('jobs', 0)} | queue depth "
        f"{health.get('queue_depth', 0)} | local workers "
        f"{health.get('local_workers', 0)}",
        "",
        f"{'tenant':<12} {'depth':>6} {'exec':>7} {'cached':>7} "
        f"{'dedup':>7} {'failed':>7} {'p50':>9} {'p95':>9} "
        f"{'wait p95':>9}",
    ]
    for tenant in sorted(tenants):
        slot = tenants[tenant]
        lines.append(
            f"{tenant:<12} {int(slot.get('depth', 0)):>6} "
            f"{int(slot.get('executed', 0)):>7} "
            f"{int(slot.get('cached', 0)):>7} "
            f"{int(slot.get('deduped', 0)):>7} "
            f"{int(slot.get('failed', 0)):>7} "
            f"{_fmt_seconds(slot.get('p50')):>9} "
            f"{_fmt_seconds(slot.get('p95')):>9} "
            f"{_fmt_seconds(slot.get('wait_p95')):>9}")
    workers = sorted(
        (labels.get("worker", "?"), int(value))
        for key, value in gauges.items()
        for name, labels in (split_metric_key(key),)
        if name == "workers.active_leases")
    if workers:
        lines += ["", "workers (active leases):"]
        for name, count in workers:
            lines.append(f"  {name:<40} {count}")
    recent = sorted(jobs,
                    key=lambda j: j.get("submitted_at") or 0)[-5:]
    if recent:
        lines += ["", "recent jobs:"]
        for job in recent:
            lines.append(
                f"  {job['id']} {job['state']:<9} "
                f"{job['tenant']:<12} "
                f"{job['completed']}/{job['total']}")
    return "\n".join(lines)


def _watch(client: ServiceClient, job_id: str) -> None:
    for record in client.stream(job_id):
        metrics = " ".join(
            f"{key}={value:.6g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in sorted(record["metrics"].items()))
        line = (f"[{record['seq'] + 1}] run {record['index']:>5} "
                f"{record['status']:<6} ({record['source']}) "
                f"{metrics}")
        if record["status"] != "ok" and record.get("error"):
            line += f"  error={record['error']}"
        print(line, flush=True)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")

    if args.command == "serve":
        from .server import CampaignService

        service = CampaignService(
            host=args.host, port=args.port, workers=args.workers,
            out_dir=args.out, store_dir=args.store,
            max_pending_points=args.max_pending,
            lease_timeout=args.lease_timeout,
            tenant_weights=_parse_weights(args.tenant_weight),
            verify=args.verify, observe=args.observe)
        print(f"campaign service on http://{args.host}:{args.port} "
              f"({args.workers} local worker(s))", flush=True)
        try:
            service.run()
        except KeyboardInterrupt:
            pass
        return 0

    if args.command == "worker":
        from .worker import run_worker

        try:
            run_worker(args.url, worker_id=args.id, poll=args.poll,
                       max_idle=args.max_idle,
                       max_chunks=args.max_chunks)
        except KeyboardInterrupt:
            pass
        return 0

    client = ServiceClient(args.url)
    try:
        if args.command == "submit":
            job = client.submit(
                _spec_ref(args.spec), tenant=args.tenant,
                priority=args.priority, root_seed=args.root_seed,
                limit=args.limit, timeout=args.timeout,
                retries=args.retries, chunk_size=args.chunk_size)
            print(json.dumps(job, indent=2, sort_keys=True))
            if args.watch:
                _watch(client, job["id"])
                status = client.status(job["id"])
                print(json.dumps(status, indent=2, sort_keys=True))
                return 1 if status["failed"] else 0
            return 0
        if args.command == "status":
            if args.job:
                payload = client.status(args.job)
            else:
                payload = {"jobs": client.jobs(tenant=args.tenant)}
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.command == "watch":
            _watch(client, args.job)
            return 0
        if args.command == "cancel":
            print(json.dumps(client.cancel(args.job), indent=2,
                             sort_keys=True))
            return 0
        if args.command == "results":
            print(json.dumps(client.results(args.job), indent=2,
                             sort_keys=True))
            return 0
        if args.command == "metrics":
            print(json.dumps(client.metrics(), indent=2,
                             sort_keys=True))
            return 0
        if args.command == "trace":
            trace = client.job_trace(args.job)
            spans = sum(1 for event in trace.get("traceEvents", [])
                        if event.get("ph") in ("X", "i"))
            other = trace.get("otherData", {})
            if args.out:
                os.makedirs(args.out, exist_ok=True)
                path = os.path.join(args.out, "trace.json")
                with open(path, "w", encoding="utf-8") as handle:
                    json.dump(trace, handle, sort_keys=True)
                    handle.write("\n")
                print(f"trace {args.job}: {spans} span(s) from "
                      f"{other.get('processes', 0)} process(es) -> "
                      f"{path}")
            else:
                print(json.dumps(trace, sort_keys=True))
            return 0
        if args.command == "usage":
            print(json.dumps(client.usage(args.tenant), indent=2,
                             sort_keys=True))
            return 0
        if args.command == "top":
            while True:
                frame = _render_top(client)
                if not args.once:
                    # clear + home, like top(1)
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                if args.once:
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except ServiceError as exc:
        print(json.dumps({"status": exc.status,
                          "response": exc.payload},
                         indent=2, sort_keys=True), file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach service at {args.url}: {exc}",
              file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
