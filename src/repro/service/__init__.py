"""`repro.service` — the asynchronous campaign service.

The paper frames SystemC-AMS as infrastructure for *system-level
exploration*: in production that is many users sweeping many parameter
points concurrently, not one engineer running one transient.  This
package turns the batch campaign engine (:mod:`repro.campaign`) into a
multi-tenant service:

* :class:`~repro.service.server.CampaignService` — asyncio HTTP API:
  submit / status / stream / cancel / results / metrics, plus the
  pull-based worker plane (``/v1/workers/lease`` + ``complete``);
* :class:`~repro.service.queue.FairShareQueue` — priority lanes under
  weighted round-robin across tenants, with bounded-depth
  backpressure;
* :class:`~repro.service.store.SharedResultStore` — fleet-wide
  content-addressed results with atomic publication and single-flight
  claims, so identical points submitted by different tenants are
  computed exactly once;
* :func:`~repro.service.worker.run_worker` — a remote worker any host
  can run to join a sweep;
* :class:`~repro.service.client.ServiceClient` — a pure-stdlib
  synchronous client.

Fleet observability (see :mod:`repro.observe.fleet`): jobs carry
W3C-``traceparent``-style trace contexts across the fork and HTTP
boundaries, executors ship telemetry segments back with their
results, and the server serves stitched Perfetto traces
(``GET /v1/jobs/{id}/trace``), Prometheus text exposition
(``GET /metrics``) and per-tenant SLO accounting
(``GET /v1/tenants/{id}/usage``).

Command line: ``python -m repro.service {serve,submit,status,watch,
worker,metrics,trace,usage,top}``.
"""

from .client import ServiceClient, ServiceError
from .jobs import (
    Job,
    JobRequest,
    SubmitError,
    execute_chunk_by_ref,
    execute_chunk_traced,
)
from .queue import PRIORITIES, FairShareQueue, QueueFull
from .server import CampaignService, ServiceHandle, start_in_thread
from .store import SharedResultStore
from .worker import run_worker

__all__ = [
    "CampaignService",
    "FairShareQueue",
    "Job",
    "JobRequest",
    "PRIORITIES",
    "QueueFull",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "SharedResultStore",
    "SubmitError",
    "execute_chunk_by_ref",
    "execute_chunk_traced",
    "run_worker",
    "start_in_thread",
]
