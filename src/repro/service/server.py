"""The campaign service: an asyncio HTTP façade over sharded workers.

One :class:`CampaignService` process owns the control plane — job
admission (with static pre-flight), the fair-share chunk queue, the
single-flight table, per-job streaming — and executes chunks on two
kinds of data plane simultaneously:

* a **local process pool** (``workers`` > 0), fed by the dispatcher
  loop;
* **remote workers** on any host that can reach the HTTP port and see
  the spec file, pulling chunks via ``POST /v1/workers/lease``
  (pull-based work stealing: a faster host simply leases more often)
  and returning outcomes via ``POST /v1/workers/complete``.  A leased
  chunk that is not completed within ``lease_timeout`` seconds is
  re-queued by the reaper — a crashed worker loses its lease, never
  the work.

Endpoints (all JSON; one request per connection):

====== =============================== =================================
Method Path                            Purpose
====== =============================== =================================
GET    /v1/healthz                     liveness + version
POST   /v1/jobs                        submit (422 verifier-rejected,
                                       429 queue full)
GET    /v1/jobs                        list jobs (``?tenant=`` filter)
GET    /v1/jobs/{id}                   status + progress counters
POST   /v1/jobs/{id}/cancel            cancel (idempotent)
GET    /v1/jobs/{id}/stream            per-point records as JSONL
                                       (``?sse=1`` for SSE framing)
GET    /v1/jobs/{id}/results           aggregates + fingerprint
GET    /v1/jobs/{id}/telemetry         merged per-point engine telemetry
GET    /v1/jobs/{id}/trace             stitched Perfetto trace (fleet
                                       spans from every executor)
GET    /v1/tenants/{id}/usage          per-tenant SLO accounting
GET    /v1/metrics                     service metrics registry dump
GET    /metrics                        Prometheus text exposition
                                       (fleet-merged; unversioned per
                                       Prometheus convention)
POST   /v1/workers/lease               pull one chunk (204 when idle)
POST   /v1/workers/complete            return chunk outcomes
                                       (+ optional telemetry segment)
====== =============================== =================================

Fleet observability (``observe="on"``, the default): each admitted job
mints a W3C-``traceparent``-style trace context; every chunk dispatch
derives a child context carried to executors through the lease payload
and the fork/pickle boundary.  Executors run chunks through
:func:`~repro.service.jobs.execute_chunk_traced`, shipping a
size-capped telemetry segment (spans + metrics + wall-clock epoch)
back with their outcomes; the server adds its own queue-wait / lease
spans and cache-hit instants and stitches everything into one
Perfetto-loadable trace per job.  Worker metric registries are merged
(counter sum, gauge last-write, histogram bucket-merge) into the
cluster view behind ``GET /metrics``.

Determinism contract: seeds are planned once, server-side, into each
point's params; identical points (same campaign name, params incl.
seed, code version, verifier ruleset) are computed **once** fleet-wide
— concurrent duplicates join the in-flight point as followers, later
duplicates hit the shared store — and every job's aggregate is
bit-identical to a serial :class:`~repro.campaign.runner.CampaignRunner`
execution of the same campaign.
"""

from __future__ import annotations

import asyncio
import logging
import os
import socket
import threading
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .. import __version__ as _VERSION
from ..campaign.cache import cache_key
from ..campaign.loader import SpecError, resolve_spec_ref, split_spec_ref
from ..campaign.records import CampaignResults, JsonlAppender, RunRecord
from ..campaign.runner import _fork_context, plan_records
from ..campaign.spec import Campaign, FixedPoints
from ..observe import MetricsRegistry
from ..observe.fleet import (
    DEFAULT_SEGMENT_SPANS,
    MetricsAggregator,
    TraceContext,
    coerce_segment,
    prometheus_text,
    split_metric_key,
    stitch_job_trace,
)
from ..observe.metrics import LATENCY_BOUNDS
from ..observe.tracer import INSTANT, SPAN
from .http import (
    HttpError,
    Request,
    Response,
    Router,
    StreamingResponse,
    start_http_server,
)
from .jobs import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    Chunk,
    Job,
    JobRequest,
    SubmitError,
    execute_chunk_by_ref,
    execute_chunk_traced,
)
from .queue import FairShareQueue

logger = logging.getLogger(__name__)

#: How long a remote worker may sit on a leased chunk before the
#: reaper takes it back.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Poll cadence for results claimed by *another* service process
#: sharing the store.
EXTERNAL_POLL_SECONDS = 0.2

#: Segments retained per job for trace stitching; beyond it incoming
#: segments are dropped (and counted) — one pathological job cannot
#: hold the server's memory hostage.
MAX_JOB_SEGMENTS = 512


def _pool_warmup() -> None:
    """No-op task whose submission forces the pool to spawn all of its
    worker processes (module-level so it pickles)."""
    return None


class CampaignService:
    """See the module docstring.  Construct, then :meth:`run` (blocking)
    or :func:`start_in_thread` (embedded)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321,
                 workers: int = 1, out_dir=None, store_dir=None,
                 max_pending_points: Optional[int] = 100_000,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 tenant_weights: Optional[Dict[str, float]] = None,
                 fsync: bool = False, verify: str = "auto",
                 metrics: Optional[MetricsRegistry] = None,
                 observe: str = "on"):
        self.host = host
        self.port = port
        self.workers = max(0, int(workers))
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.lease_timeout = float(lease_timeout)
        if verify not in ("auto", "on", "off"):
            raise ValueError("verify must be 'auto', 'on' or 'off'")
        self.verify = verify
        if observe not in ("on", "off"):
            raise ValueError("observe must be 'on' or 'off'")
        #: fleet observability master switch: trace contexts, stitched
        #: job traces and worker telemetry collection (per-job opt-out
        #: via the submit payload's ``observe: false``)
        self.observe = observe == "on"
        #: merged view of every worker telemetry segment's metrics;
        #: ``GET /metrics`` composes it with the live registry
        self.fleet = MetricsAggregator()
        self.owner = f"svc-{os.getpid()}-{uuid.uuid4().hex[:8]}"

        from .store import SharedResultStore
        self.store = (SharedResultStore(store_dir, fsync=fsync)
                      if store_dir is not None else None)
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.queue = FairShareQueue(max_depth=max_pending_points,
                                    weights=tenant_weights)
        self.jobs: Dict[str, Job] = {}
        self.chunks: Dict[str, Chunk] = {}
        #: cache key -> (job_id, index) currently computing that point
        self._leader: Dict[str, Tuple[str, int]] = {}
        #: cache key -> [(job_id, index), ...] awaiting the leader
        self._followers: Dict[str, List[Tuple[str, int]]] = {}
        #: cache key -> [(job_id, index), ...] awaiting a *foreign*
        #: process' publication (store claim by another owner)
        self._external: Dict[str, List[Tuple[str, int]]] = {}
        self._appenders: Dict[str, JsonlAppender] = {}
        self._job_seq = 0
        self._local_busy = 0
        self._seen_workers: set = set()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._tasks: set = set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopping: Optional[asyncio.Event] = None
        self.ready = threading.Event()

        from ..verify import ruleset_version
        self._ruleset = ruleset_version()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`stop` (blocking; owns its event loop)."""
        asyncio.run(self.serve())

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        if self.workers > 0:
            self._make_pool()
            # fork the workers NOW, before any client socket exists:
            # lazily-forked workers would inherit duplicates of open
            # connection fds and hold them for the pool's lifetime
            await self._loop.run_in_executor(self._pool, _pool_warmup)
        server = await start_http_server(self._router(), self.host,
                                         self.port)
        if self.port == 0:
            self.port = server.sockets[0].getsockname()[1]
        logger.info("campaign service listening on %s:%d (%d local "
                    "worker(s))", self.host, self.port, self.workers)
        self._spawn(self._dispatch_loop())
        self._spawn(self._reaper_loop())
        if self.store is not None:
            self._spawn(self._external_poll_loop())
        self.ready.set()
        try:
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._tasks):
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
            for appender in self._appenders.values():
                appender.close()
            self._appenders.clear()

    def stop(self) -> None:
        """Thread-safe shutdown request."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(
                lambda: self._stopping and self._stopping.set())

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _make_pool(self) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_fork_context())

    def _spawn(self, coro) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _wakeup(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def _router(self) -> Router:
        router = Router()
        router.add("GET", "/v1/healthz", self._h_health)
        router.add("POST", "/v1/jobs", self._h_submit)
        router.add("GET", "/v1/jobs", self._h_list_jobs)
        router.add("GET", "/v1/jobs/(?P<job_id>[^/]+)", self._h_status)
        router.add("POST", "/v1/jobs/(?P<job_id>[^/]+)/cancel",
                   self._h_cancel)
        router.add("GET", "/v1/jobs/(?P<job_id>[^/]+)/stream",
                   self._h_stream)
        router.add("GET", "/v1/jobs/(?P<job_id>[^/]+)/results",
                   self._h_results)
        router.add("GET", "/v1/jobs/(?P<job_id>[^/]+)/telemetry",
                   self._h_telemetry)
        router.add("GET", "/v1/jobs/(?P<job_id>[^/]+)/trace",
                   self._h_trace)
        router.add("GET", "/v1/tenants/(?P<tenant>[^/]+)/usage",
                   self._h_usage)
        router.add("GET", "/v1/metrics", self._h_metrics)
        router.add("GET", "/metrics", self._h_prometheus)
        router.add("POST", "/v1/workers/lease", self._h_lease)
        router.add("POST", "/v1/workers/complete", self._h_complete)
        return router

    def _job_or_404(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return job

    # ------------------------------------------------------------------
    # fleet observability: the server's own trace segment per job
    # ------------------------------------------------------------------

    def _start_trace(self, job: Job) -> None:
        """Mint the job's trace context and open the server's own
        telemetry segment (segment 0 of the stitched trace).

        Server events are recorded with *absolute* wall-clock
        timestamps under ``epoch_unix = 0.0`` — the stitcher re-bases
        every segment onto the earliest event, so server and worker
        planes land on one timeline regardless of each process'
        ``perf_counter`` epoch.
        """
        job.trace_context = TraceContext.mint()
        job.segments.append({
            "traceparent": job.trace_context.to_traceparent(),
            "worker": "server",
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "epoch_unix": 0.0,
            "spans": [],
            "spans_dropped": 0,
            "metrics": None,
        })

    def _server_event(self, job: Job, kind: str, name: str,
                      track: str, start_wall: float, duration: float,
                      **attrs: Any) -> None:
        if job.trace_context is None or not job.segments:
            return
        segment = job.segments[0]
        if len(segment["spans"]) >= DEFAULT_SEGMENT_SPANS:
            segment["spans_dropped"] += 1
            return
        segment["spans"].append(
            [kind, name, track, start_wall, duration, attrs or None])

    def _add_segment(self, job: Job, payload: Any) -> None:
        """Adopt an executor's telemetry segment: keep its spans for
        stitching (bounded) and fold its metrics into the fleet view."""
        segment = coerce_segment(payload)
        if segment is None:
            return
        if segment["metrics"] is not None:
            self.fleet.add(segment["metrics"])
        if job.trace_context is None:
            return
        if len(job.segments) >= MAX_JOB_SEGMENTS:
            job.segments_dropped += 1
            return
        job.segments.append(segment)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    async def _h_submit(self, request: Request) -> Response:
        try:
            job_request = JobRequest.from_payload(request.json())
        except SubmitError as exc:
            raise HttpError(400, str(exc))
        job = self._submit(job_request)
        return Response.json(job.status(), status=201)

    def _submit(self, request: JobRequest) -> Job:
        """Admission: resolve → customize → verify → plan → classify →
        enqueue.  Runs synchronously on the event loop, so admission of
        concurrent submissions is serialized and race-free."""
        try:
            campaign = resolve_spec_ref(request.spec)
        except SpecError as exc:
            raise HttpError(400, f"cannot resolve spec: {exc}")
        campaign = self._customize(campaign, request)
        records = plan_records(campaign)
        self._verify_submit(campaign, records)

        code_version = campaign.resolved_code_version()
        keys = [cache_key(campaign.name, record.params, code_version,
                          self._ruleset)
                for record in records]

        # classify every point before mutating any shared state, so a
        # 429 leaves no residue
        cached_hits: List[Tuple[int, RunRecord]] = []
        follow: List[Tuple[int, str]] = []
        external: List[Tuple[int, str]] = []
        dispatch: List[Tuple[int, str]] = []
        seen_in_job: Dict[str, int] = {}
        for index, key in enumerate(keys):
            hit = self.store.get(key) if self.store is not None \
                else None
            if hit is not None and hit.status == "ok":
                cached_hits.append((index, hit))
            elif key in self._leader or key in seen_in_job:
                follow.append((index, key))
            elif key in self._external:
                external.append((index, key))
            elif self.store is not None \
                    and self.store.claimed_elsewhere(key, self.owner):
                external.append((index, key))
            else:
                dispatch.append((index, key))
                seen_in_job[key] = index
        if not self.queue.has_capacity(len(dispatch)):
            self.metrics.counter("service.jobs.rejected").inc()
            raise HttpError(
                429, "queue full",
                pending=self.queue.depth(),
                limit=self.queue.max_depth,
                requested=len(dispatch))

        self._job_seq += 1
        job_id = f"j{self._job_seq:05d}"
        job = Job(job_id, request, campaign, records, keys,
                  code_version)
        path, _ = split_spec_ref(request.spec)
        job.exec_ref = f"{path}::{campaign.name}"
        self.jobs[job_id] = job
        if self.observe and request.observe:
            self._start_trace(job)
            self._server_event(job, INSTANT, "job.submit", "jobs",
                               time.time(), 0.0, job_id=job_id,
                               tenant=request.tenant,
                               campaign=campaign.name)
        self._open_appender(job)
        self.metrics.counter("service.jobs.submitted").inc()
        self.metrics.counter("service.jobs.submitted",
                             tenant=request.tenant).inc()

        for index, hit in cached_hits:
            self._finalize_from_record(job, index, hit,
                                       source="cached")
        for index, key in follow:
            self._followers.setdefault(key, []).append((job_id, index))
        for index, key in external:
            self._external.setdefault(key, []).append((job_id, index))
        tasks = []
        for index, key in dispatch:
            if self.store is not None:
                self.store.try_claim(key, self.owner)
            self._leader[key] = (job_id, index)
            tasks.append((index, records[index].params, 1))
        if tasks:
            for chunk in job.make_chunks(tasks, request.chunk_size):
                self.chunks[chunk.chunk_id] = chunk
                self.queue.push(chunk)
        elif not job.terminal and job.counts["completed"] \
                == job.counts["total"]:
            self._finish_job(job)
        self._observe_queue_depth()
        self._wakeup()
        return job

    @staticmethod
    def _customize(campaign: Campaign,
                   request: JobRequest) -> Campaign:
        """Apply submit-time overrides on a copy of the shared campaign
        object (spec modules are cached process-wide; never mutate)."""
        import dataclasses

        changes: Dict[str, Any] = {}
        if request.root_seed is not None:
            changes["root_seed"] = request.root_seed
        if request.limit is not None:
            changes["space"] = FixedPoints(
                campaign.points()[:request.limit])
        if not changes:
            return campaign
        return dataclasses.replace(campaign, **changes)

    def _verify_submit(self, campaign: Campaign,
                       records: List[RunRecord]) -> None:
        """Static pre-flight on a sample point: a spec whose model the
        verifier rejects is refused with a structured 422 before any
        queue slot or worker is spent.  (Per-point pre-flight remains
        the in-process runner's job; the service checks the first
        planned point as the spec's representative.)  ``run``-style
        campaigns expose no model, but their callable still gets the
        behavioral CODE lint (determinism, pickle safety)."""
        if self.verify == "off" or not records:
            return
        from ..verify import verify_callables, verify_model

        if campaign.build is None:
            if campaign.run is None:
                return
            report = verify_callables(
                [(f"{campaign.name}.run", campaign.run)],
                target=campaign.name)
            if not report.ok:
                self.metrics.counter("service.jobs.rejected").inc()
                raise HttpError(
                    422, "static verification failed",
                    campaign=campaign.name,
                    diagnostics=report.to_dict(),
                )
            return

        extra_code = [(f"{campaign.name}.build", campaign.build)]
        if campaign.metrics is not None:
            extra_code.append(
                (f"{campaign.name}.metrics", campaign.metrics))
        try:
            simulator = campaign.build(dict(records[0].params))
            report = verify_model(simulator.top,
                                  extra_code=extra_code)
        except Exception:
            # a crashing build is an *execution* failure — dispatch it
            # so the worker classifies it, exactly like CampaignRunner
            return
        if not report.ok:
            self.metrics.counter("service.jobs.rejected").inc()
            raise HttpError(
                422, "static verification failed",
                campaign=campaign.name,
                diagnostics=report.to_dict())

    # ------------------------------------------------------------------
    # point finalization, dedup and streaming
    # ------------------------------------------------------------------

    def _open_appender(self, job: Job) -> None:
        if self.out_dir is None:
            return
        directory = self.out_dir / "jobs" / job.id
        directory.mkdir(parents=True, exist_ok=True)
        self._appenders[job.id] = JsonlAppender(
            directory / "records.jsonl")

    def _finalize_from_record(self, job: Job, index: int,
                              source_record: RunRecord,
                              source: str) -> None:
        """Complete one point from an already-computed record (store
        hit or dedup'd leader result)."""
        self._finalize_point(
            job, index, status=source_record.status,
            metrics=source_record.metrics, error=source_record.error,
            failure_kind=source_record.failure_kind,
            attempts=source_record.attempts,
            wall_time=source_record.wall_time,
            metrics_telemetry=source_record.metrics_telemetry,
            source=source)

    def _finalize_point(self, job: Job, index: int, *, status: str,
                        metrics: Dict[str, Any], error: Optional[str],
                        failure_kind: Optional[str], attempts: int,
                        wall_time: float,
                        metrics_telemetry: Optional[Dict[str, Any]],
                        source: str) -> None:
        record = job.records[index]
        if record.status != "pending":
            return  # late duplicate; first finalization won
        record.status = status
        record.metrics = dict(metrics or {})
        record.error = error
        record.failure_kind = failure_kind
        record.attempts = attempts
        record.wall_time += wall_time
        record.metrics_telemetry = metrics_telemetry
        record.cached = source in ("cached", "dedup")
        job.counts["completed"] += 1
        job.counts["ok" if status == "ok" else "failed"] += 1
        counter = {"cached": "cached", "dedup": "deduped",
                   "executed": "executed"}[source]
        job.counts[counter] += 1
        tenant = job.request.tenant
        self.metrics.counter(f"service.points.{counter}").inc()
        self.metrics.counter(f"service.points.{counter}",
                             tenant=tenant).inc()
        if status == "failed":
            self.metrics.counter("service.points.failed").inc()
            self.metrics.counter("service.points.failed",
                                 tenant=tenant).inc()
            # per-kind detail lives under its own family: folding the
            # failure kind into service.points.* would collide with
            # the exposition's kind="failed" discriminator label
            self.metrics.counter(
                "service.point.failures", tenant=tenant,
                kind=failure_kind or "unknown").inc()
        if source == "executed":
            self.metrics.histogram(
                "service.point.seconds", bounds=LATENCY_BOUNDS,
                tenant=tenant).observe(float(wall_time))
        else:
            self._server_event(job, INSTANT, "cache.hit", "cache",
                              time.time(), 0.0, index=index,
                              source=source)

        entry = record.to_dict()
        entry["seq"] = len(job.completed)
        entry["source"] = source
        job.completed.append(entry)
        appender = self._appenders.get(job.id)
        if appender is not None:
            appender.append(entry)
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(entry)
        if job.counts["completed"] == job.counts["total"] \
                and not job.terminal:
            self._finish_job(job)

    def _finish_job(self, job: Job, state: str = DONE) -> None:
        job.state = state
        if job.started_monotonic is None:
            # fully served from cache/dedup: the whole lifetime was
            # waiting on others' work; run time is effectively zero
            self._mark_started(job)
        job.finished_monotonic = time.monotonic()
        run_seconds = job.run_seconds()
        if run_seconds is not None:
            self.metrics.histogram(
                "job.run_seconds",
                bounds=LATENCY_BOUNDS).observe(run_seconds)
        self._server_event(job, SPAN, "job.run", "jobs",
                           job.submitted_at,
                           time.time() - job.submitted_at,
                           job_id=job.id,
                           tenant=job.request.tenant, state=state,
                           **{key: job.counts[key]
                              for key in ("total", "cached",
                                          "deduped", "executed",
                                          "failed")})
        self.metrics.counter(
            "service.jobs.cancelled" if state == CANCELLED
            else "service.jobs.completed").inc()
        appender = self._appenders.pop(job.id, None)
        if appender is not None:
            appender.close()
        for subscriber in list(job.subscribers):
            subscriber.put_nowait(None)

    def _mark_started(self, job: Job) -> None:
        if job.started_monotonic is None:
            job.started_monotonic = time.monotonic()
            if job.state == QUEUED:
                job.state = RUNNING
            wait = job.wait_seconds()
            if wait is not None:
                self.metrics.histogram(
                    "job.wait_seconds",
                    bounds=LATENCY_BOUNDS).observe(wait)

    def _on_point_outcome(self, job: Job,
                          outcome: Dict[str, Any]) -> None:
        index = int(outcome["index"])
        if not 0 <= index < len(job.records):
            return
        key = job.keys[index]
        record = job.records[index]
        status = outcome.get("status", "failed")
        attempt = int(outcome.get("attempt", 1))
        failure_kind = outcome.get("failure_kind")

        if status == "failed" and failure_kind != "permanent" \
                and attempt <= job.request.retries \
                and not job.terminal:
            record.wall_time += float(outcome.get("wall_time", 0.0))
            retry = Chunk(chunk_id=job.next_chunk_id(),
                          job_id=job.id, tenant=job.request.tenant,
                          priority=job.request.priority,
                          tasks=[(index, record.params, attempt + 1)],
                          created_wall=time.time())
            self._trace_chunk(job, retry)
            self.chunks[retry.chunk_id] = retry
            self.queue.push(retry, force=True)
            self.metrics.counter("service.points.retried").inc()
            self._wakeup()
            return

        result = RunRecord(
            index=index, params=record.params, seed=record.seed,
            status=status, metrics=dict(outcome.get("metrics") or {}),
            error=outcome.get("error"), failure_kind=failure_kind,
            wall_time=float(outcome.get("wall_time", 0.0)),
            attempts=attempt,
            metrics_telemetry=outcome.get("metrics_telemetry"))
        if not job.terminal:
            self._finalize_from_record(job, index, result,
                                       source="executed")
        if self.store is not None:
            self.store.publish(key, result, owner=self.owner)
        leader = self._leader.get(key)
        if leader == (job.id, index):
            del self._leader[key]
        for fjob_id, findex in self._followers.pop(key, []):
            follower = self.jobs.get(fjob_id)
            if follower is not None and not follower.terminal:
                self._finalize_from_record(follower, findex, result,
                                           source="dedup")

    @staticmethod
    def _trace_chunk(job: Job, chunk: Chunk) -> None:
        """Derive a child trace context for an ad-hoc (retry/requeue/
        promotion) chunk; batch chunks get theirs in ``make_chunks``."""
        if job.trace_context is not None:
            chunk.traceparent = \
                job.trace_context.child().to_traceparent()

    def _record_queue_wait(self, job: Job, chunk: Chunk) -> None:
        """Queue-wait accounting at the moment a chunk leaves the
        queue for an executor (local pool slot or remote lease)."""
        now = time.time()
        created = chunk.created_wall or now
        wait = max(0.0, now - created)
        self.metrics.histogram(
            "service.queue.wait_seconds", bounds=LATENCY_BOUNDS,
            tenant=chunk.tenant).observe(wait)
        self._server_event(job, SPAN, "queue.wait", "queue",
                           created, wait, chunk=chunk.chunk_id,
                           tenant=chunk.tenant)

    def _complete_chunk(self, chunk: Chunk,
                        outcomes: List[Dict[str, Any]],
                        worker: str,
                        telemetry: Any = None) -> bool:
        if chunk.state == "done":
            self.metrics.counter("service.chunks.duplicate").inc()
            return False
        chunk.state = "done"
        self.chunks.pop(chunk.chunk_id, None)
        self.metrics.counter("service.chunks.completed").inc()
        job = self.jobs.get(chunk.job_id)
        if job is None:
            return False
        if telemetry is not None:
            self._add_segment(job, telemetry)
        if chunk.started_wall:
            self._server_event(
                job, SPAN, "chunk.lease", "leases",
                chunk.started_wall,
                max(0.0, time.time() - chunk.started_wall),
                chunk=chunk.chunk_id, worker=worker,
                tasks=len(chunk.tasks))
        returned = set()
        for outcome in outcomes:
            if not isinstance(outcome, dict) or "index" not in outcome:
                continue
            returned.add(int(outcome["index"]))
            self._on_point_outcome(job, outcome)
        missing = [(index, params, attempt)
                   for index, params, attempt in chunk.tasks
                   if index not in returned
                   and job.records[index].status == "pending"]
        if missing and not job.terminal:
            requeued = Chunk(chunk_id=job.next_chunk_id(),
                             job_id=job.id, tenant=chunk.tenant,
                             priority=chunk.priority, tasks=missing,
                             created_wall=time.time())
            self._trace_chunk(job, requeued)
            self.chunks[requeued.chunk_id] = requeued
            self.queue.push(requeued, force=True)
            self.metrics.counter("service.chunks.requeued").inc()
        self._observe_queue_depth()
        self._wakeup()
        return True

    def _observe_queue_depth(self) -> None:
        self.metrics.gauge("queue.depth").set(self.queue.depth())
        for tenant in {job.request.tenant
                       for job in self.jobs.values()}:
            self.metrics.gauge("queue.depth", tenant=tenant).set(
                self.queue.depth(tenant))
        # worker liveness: active leases per executor name (zeroing
        # previously-seen workers so a vanished host reads 0, not its
        # last value)
        leases: Dict[str, int] = {}
        for chunk in self.chunks.values():
            if chunk.state == "leased" and chunk.worker:
                leases[chunk.worker] = leases.get(chunk.worker, 0) + 1
        self._seen_workers.update(leases)
        for worker in self._seen_workers:
            self.metrics.gauge("workers.active_leases",
                               worker=worker).set(
                leases.get(worker, 0))
        self.metrics.gauge("workers.busy_local").set(self._local_busy)

    # ------------------------------------------------------------------
    # local execution
    # ------------------------------------------------------------------

    def _local_capacity(self) -> int:
        if self._pool is None:
            return 0
        return self.workers - self._local_busy

    async def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            while self._local_capacity() > 0:
                chunk = self.queue.pop()
                if chunk is None:
                    break
                self._start_local(chunk)
            self._observe_queue_depth()
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=0.5)
            except asyncio.TimeoutError:
                pass

    def _start_local(self, chunk: Chunk) -> None:
        job = self.jobs.get(chunk.job_id)
        if job is None or job.terminal:
            chunk.state = "done"
            self.chunks.pop(chunk.chunk_id, None)
            return
        # local chunks never expire: the pool future completing (or
        # breaking) is their lifecycle, not the lease reaper
        chunk.state = "leased"
        chunk.worker = "local"
        chunk.started_wall = time.time()
        self._mark_started(job)
        self._record_queue_wait(job, chunk)
        self._local_busy += 1
        self.metrics.counter("service.chunks.leased").inc()
        self._spawn(self._run_local(job, chunk))

    async def _run_local(self, job: Job, chunk: Chunk) -> None:
        telemetry = None
        try:
            if job.trace_context is not None:
                traced = await self._loop.run_in_executor(
                    self._pool, execute_chunk_traced, job.exec_ref,
                    chunk.tasks, job.request.timeout,
                    chunk.traceparent, "pool")
                outcomes = traced["outcomes"]
                telemetry = traced["telemetry"]
            else:
                outcomes = await self._loop.run_in_executor(
                    self._pool, execute_chunk_by_ref, job.exec_ref,
                    chunk.tasks, job.request.timeout)
        except Exception as exc:
            logger.exception("local pool failed on chunk %s",
                             chunk.chunk_id)
            # a broken pool poisons every future submission: rebuild it
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._make_pool()
            outcomes = [
                {"index": index, "attempt": attempt,
                 "status": "failed", "metrics": {},
                 "error": f"worker pool failure: "
                          f"{type(exc).__name__}: {exc}",
                 "failure_kind": "retryable", "diagnostic": None,
                 "metrics_telemetry": None, "wall_time": 0.0}
                for index, _params, attempt in chunk.tasks]
        finally:
            self._local_busy -= 1
        self._complete_chunk(chunk, outcomes, worker="local",
                             telemetry=telemetry)

    # ------------------------------------------------------------------
    # remote workers (pull-based work stealing)
    # ------------------------------------------------------------------

    async def _h_lease(self, request: Request) -> Response:
        payload = request.json()
        worker = str(payload.get("worker") or "remote")
        chunk = self.queue.pop()
        if chunk is None:
            return Response.no_content()
        job = self.jobs.get(chunk.job_id)
        if job is None or job.terminal:
            chunk.state = "done"
            self.chunks.pop(chunk.chunk_id, None)
            return Response.no_content()
        chunk.lease(worker, self.lease_timeout)
        self._mark_started(job)
        self._record_queue_wait(job, chunk)
        self.metrics.counter("service.chunks.leased").inc()
        self._observe_queue_depth()
        return Response.json({
            "job_id": job.id,
            "chunk_id": chunk.chunk_id,
            "spec": job.exec_ref,
            "tasks": [[index, params, attempt]
                      for index, params, attempt in chunk.tasks],
            "timeout": job.request.timeout,
            "lease_timeout": self.lease_timeout,
            "traceparent": chunk.traceparent,
        })

    async def _h_complete(self, request: Request) -> Response:
        payload = request.json()
        chunk_id = payload.get("chunk_id")
        outcomes = payload.get("outcomes")
        if not chunk_id or not isinstance(outcomes, list):
            raise HttpError(400,
                            "complete needs chunk_id and outcomes[]")
        chunk = self.chunks.get(str(chunk_id))
        if chunk is None or chunk.state == "done":
            self.metrics.counter("service.chunks.duplicate").inc()
            return Response.json({"accepted": False})
        accepted = self._complete_chunk(
            chunk, outcomes, worker=str(payload.get("worker") or "?"),
            telemetry=payload.get("telemetry"))
        return Response.json({"accepted": accepted})

    async def _reaper_loop(self) -> None:
        cadence = max(0.05, min(self.lease_timeout / 4, 1.0))
        while not self._stopping.is_set():
            await asyncio.sleep(cadence)
            now = time.monotonic()
            for chunk in list(self.chunks.values()):
                if chunk.worker == "local" or not chunk.expired(now):
                    continue
                job = self.jobs.get(chunk.job_id)
                if job is None or job.terminal:
                    chunk.state = "done"
                    self.chunks.pop(chunk.chunk_id, None)
                    continue
                logger.warning(
                    "lease expired on chunk %s (worker %s); "
                    "re-queueing", chunk.chunk_id, chunk.worker)
                chunk.requeue()
                self.queue.push(chunk, force=True)
                self.metrics.counter("service.chunks.requeued").inc()
                self._wakeup()

    async def _external_poll_loop(self) -> None:
        """Resolve points claimed by *other* service processes sharing
        the store: adopt their published results, or take over keys
        whose claim went stale without a publication."""
        while not self._stopping.is_set():
            await asyncio.sleep(EXTERNAL_POLL_SECONDS)
            for key in list(self._external):
                hit = self.store.get(key)
                if hit is not None and hit.status == "ok":
                    for job_id, index in self._external.pop(key, []):
                        job = self.jobs.get(job_id)
                        if job is not None and not job.terminal:
                            self._finalize_from_record(
                                job, index, hit, source="cached")
                    continue
                if self.store.claimed_elsewhere(key, self.owner):
                    continue  # still being computed elsewhere
                waiters = self._external.pop(key, [])
                self._promote(key, waiters)

    def _promote(self, key: str,
                 waiters: List[Tuple[str, int]]) -> None:
        """Make the first live waiter the leader of ``key`` and queue
        its point; remaining waiters become followers."""
        live = [(job_id, index) for job_id, index in waiters
                if (job := self.jobs.get(job_id)) is not None
                and not job.terminal
                and job.records[index].status == "pending"]
        if not live:
            return
        job_id, index = live[0]
        job = self.jobs[job_id]
        if self.store is not None:
            self.store.try_claim(key, self.owner)
        self._leader[key] = (job_id, index)
        if len(live) > 1:
            self._followers.setdefault(key, []).extend(live[1:])
        chunk = Chunk(chunk_id=job.next_chunk_id(), job_id=job_id,
                      tenant=job.request.tenant,
                      priority=job.request.priority,
                      tasks=[(index, job.records[index].params, 1)],
                      created_wall=time.time())
        self._trace_chunk(job, chunk)
        self.chunks[chunk.chunk_id] = chunk
        self.queue.push(chunk, force=True)
        self._wakeup()

    # ------------------------------------------------------------------
    # status / stream / results / cancel
    # ------------------------------------------------------------------

    async def _h_health(self, request: Request) -> Response:
        return Response.json({
            "ok": True, "version": _VERSION,
            "jobs": len(self.jobs),
            "queue_depth": self.queue.depth(),
            "local_workers": self.workers,
        })

    async def _h_list_jobs(self, request: Request) -> Response:
        tenant = request.query.get("tenant")
        jobs = [job.status() for job in self.jobs.values()
                if tenant is None or job.request.tenant == tenant]
        return Response.json({"jobs": jobs})

    async def _h_status(self, request: Request,
                        job_id: str) -> Response:
        return Response.json(self._job_or_404(job_id).status())

    async def _h_cancel(self, request: Request,
                        job_id: str) -> Response:
        job = self._job_or_404(job_id)
        if not job.terminal:
            self._cancel(job)
        return Response.json(job.status())

    def _cancel(self, job: Job) -> None:
        self.queue.discard_job(job.id)
        in_flight_indices = set()
        for chunk in list(self.chunks.values()):
            if chunk.job_id != job.id:
                continue
            if chunk.state == "leased":
                # let it finish: its result still serves followers and
                # the shared store; the cancelled job ignores it
                in_flight_indices.update(
                    index for index, _p, _a in chunk.tasks)
            else:
                chunk.cancelled = True
                chunk.state = "done"
                self.chunks.pop(chunk.chunk_id, None)
        # re-home or release this job's undispatched leaderships
        for key, (owner_job, index) in list(self._leader.items()):
            if owner_job != job.id or index in in_flight_indices:
                continue
            del self._leader[key]
            waiters = self._followers.pop(key, [])
            if waiters:
                self._promote(key, waiters)
            elif self.store is not None:
                self.store.release(key, owner=self.owner)
        # drop this job's follower/external registrations
        for table in (self._followers, self._external):
            for key in list(table):
                table[key] = [(jid, idx) for jid, idx in table[key]
                              if jid != job.id]
                if not table[key]:
                    del table[key]
        self._finish_job(job, state=CANCELLED)
        self._observe_queue_depth()

    async def _h_stream(self, request: Request,
                        job_id: str) -> StreamingResponse:
        job = self._job_or_404(job_id)
        sse = (request.query.get("sse") == "1"
               or "text/event-stream"
               in request.headers.get("accept", ""))
        subscriber: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(subscriber)
        # no await between registration and snapshot: the two views
        # tile the record sequence exactly (no gap, no overlap)
        snapshot = list(job.completed)
        terminal = job.terminal

        def encode(entry: Dict[str, Any]) -> bytes:
            from ..campaign.records import canonical_json
            line = canonical_json(entry)
            if sse:
                return f"data: {line}\n\n".encode()
            return (line + "\n").encode()

        async def gen():
            try:
                for entry in snapshot:
                    yield encode(entry)
                if not terminal:
                    while True:
                        entry = await subscriber.get()
                        if entry is None:
                            break
                        yield encode(entry)
                if sse:
                    yield b"event: end\ndata: {}\n\n"
            finally:
                if subscriber in job.subscribers:
                    job.subscribers.remove(subscriber)

        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        return StreamingResponse(gen(), content_type=content_type)

    def _results_view(self, job: Job) -> CampaignResults:
        return CampaignResults(
            [record for record in job.records
             if record.status != "pending"])

    async def _h_results(self, request: Request,
                         job_id: str) -> Response:
        job = self._job_or_404(job_id)
        results = self._results_view(job)
        payload: Dict[str, Any] = {
            "id": job.id,
            "state": job.state,
            "summary": results.summary(),
            "counts": dict(job.counts),
            "fingerprint": (results.fingerprint()
                            if job.state == DONE else None),
            "metrics": {},
        }
        ok = results.ok()
        for name in results.metric_names():
            values = ok.metric(name)
            if len(values):
                payload["metrics"][name] = {
                    "mean": float(values.mean()),
                    "min": float(values.min()),
                    "max": float(values.max()),
                    "count": int(len(values)),
                }
        return Response.json(payload)

    async def _h_telemetry(self, request: Request,
                           job_id: str) -> Response:
        job = self._job_or_404(job_id)
        merged: Dict[str, Dict[str, float]] = {}
        points = 0
        for record in job.records:
            snapshot = record.metrics_telemetry
            if not snapshot:
                continue
            points += 1
            for key, value in snapshot.items():
                if not isinstance(value, (int, float)):
                    continue
                slot = merged.setdefault(
                    key, {"sum": 0.0, "count": 0.0})
                slot["sum"] += float(value)
                slot["count"] += 1.0
        telemetry = {
            key: {"sum": slot["sum"], "count": int(slot["count"]),
                  "mean": slot["sum"] / slot["count"]}
            for key, slot in merged.items()}
        return Response.json({
            "id": job.id,
            "points_with_telemetry": points,
            "telemetry": telemetry,
        })

    async def _h_metrics(self, request: Request) -> Response:
        self._observe_queue_depth()
        return Response.json(self.metrics.to_dict())

    # ------------------------------------------------------------------
    # fleet observability endpoints
    # ------------------------------------------------------------------

    async def _h_prometheus(self, request: Request) -> Response:
        """Prometheus text exposition of the fleet-merged metrics:
        the server's live registry composed (non-destructively) with
        every worker segment's registry collected so far."""
        self._observe_queue_depth()
        text = prometheus_text(
            self.fleet.merged(self.metrics.to_dict()))
        return Response(
            200, text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8")

    async def _h_trace(self, request: Request,
                       job_id: str) -> Response:
        job = self._job_or_404(job_id)
        if job.trace_context is None:
            raise HttpError(
                404, f"no trace for job {job_id} (observability is "
                     "off for this job)")
        trace = stitch_job_trace(job.trace_context.to_traceparent(),
                                 job.segments)
        other = trace["otherData"]
        other["job"] = job.id
        other["state"] = job.state
        other["dropped_segments"] = job.segments_dropped
        return Response.json(trace)

    async def _h_usage(self, request: Request,
                       tenant: str) -> Response:
        """Per-tenant SLO accounting, assembled from the tenant-labeled
        counters/histograms this server maintains at finalization."""
        jobs = [job for job in self.jobs.values()
                if job.request.tenant == tenant]
        if not jobs:
            raise HttpError(404, f"no jobs for tenant: {tenant}")

        def counter_value(name: str, **labels: Any) -> float:
            metric = self.metrics.get(name, **labels)
            return float(metric.value) if metric is not None else 0.0

        points = {kind: counter_value(f"service.points.{kind}",
                                      tenant=tenant)
                  for kind in ("executed", "cached", "deduped",
                               "failed", )}
        completed = (points["executed"] + points["cached"]
                     + points["deduped"])
        hits = points["cached"] + points["deduped"]
        failure_kinds: Dict[str, float] = {}
        for key in self.metrics.names():
            name, labels = split_metric_key(key)
            if name == "service.point.failures" \
                    and labels.get("tenant") == tenant \
                    and "kind" in labels:
                failure_kinds[labels["kind"]] = counter_value(
                    name, **labels)
        histograms = {}
        for short, name in (("queue_wait_seconds",
                             "service.queue.wait_seconds"),
                            ("point_seconds",
                             "service.point.seconds")):
            metric = self.metrics.get(name, tenant=tenant)
            histograms[short] = (metric.to_dict()
                                 if metric is not None else None)
        return Response.json({
            "tenant": tenant,
            "jobs": {
                "total": len(jobs),
                "by_state": {
                    state: sum(1 for job in jobs
                               if job.state == state)
                    for state in (QUEUED, RUNNING, DONE, CANCELLED)},
            },
            "points": points,
            "cache_hit_ratio": (hits / completed) if completed else 0.0,
            "failure_kinds": failure_kinds,
            "queue_depth": self.queue.depth(tenant),
            **histograms,
        })


# ----------------------------------------------------------------------
# embedding helper
# ----------------------------------------------------------------------

class ServiceHandle:
    """A service running on a daemon thread (tests, notebooks)."""

    def __init__(self, service: CampaignService,
                 thread: threading.Thread):
        self.service = service
        self.thread = thread

    @property
    def url(self) -> str:
        return self.service.url

    def stop(self, timeout: float = 5.0) -> None:
        self.service.stop()
        self.thread.join(timeout=timeout)


def start_in_thread(**kwargs) -> ServiceHandle:
    """Start a :class:`CampaignService` on a daemon thread and block
    until it is accepting connections.  ``port=0`` picks a free port
    (read it back from ``handle.service.port``)."""
    service = CampaignService(**kwargs)
    thread = threading.Thread(target=service.run,
                              name="campaign-service", daemon=True)
    thread.start()
    if not service.ready.wait(timeout=10.0):
        raise RuntimeError("campaign service failed to start")
    return ServiceHandle(service, thread)
