"""Fair-share work queue: per-tenant priority lanes under weighted
round-robin.

The service schedules at *chunk* granularity (a chunk is a handful of
campaign points), so fairness is continuous: a tenant submitting a
10 000-point sweep does not lock out a tenant submitting 10 points —
the dispatcher alternates between their queued chunks according to the
tenants' weights.

Scheduling policy, in order:

1. **fair share across tenants** — smooth weighted round-robin: every
   tenant with queued work accrues credit proportional to its weight
   each scheduling round; the highest-credit tenant is served and pays
   the round's total weight back.  Equal weights degenerate to strict
   round-robin; a weight-2 tenant is served twice as often as a
   weight-1 tenant, never exclusively.
2. **priority within a tenant** — three lanes (``high`` > ``normal`` >
   ``low``); a tenant's turn always serves its highest non-empty lane.
3. **FIFO within a lane** — submission order is preserved.

Backpressure is enforced in *points*, not chunks: :meth:`push` raises
:class:`QueueFull` once the queued-point total would exceed
``max_depth`` (the service maps this to HTTP 429 at submit time).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

#: Priority lanes, strongest first.
PRIORITIES = ("high", "normal", "low")


class QueueFull(Exception):
    """Queue depth bound hit; the submitter must back off."""

    def __init__(self, pending: int, limit: int, requested: int):
        super().__init__(
            f"queue full: {pending} points pending, limit {limit}, "
            f"requested {requested} more")
        self.pending = pending
        self.limit = limit
        self.requested = requested


class FairShareQueue:
    """See the module docstring for the scheduling policy."""

    def __init__(self, max_depth: Optional[int] = None,
                 weights: Optional[Dict[str, float]] = None,
                 default_weight: float = 1.0):
        self.max_depth = max_depth
        self.default_weight = float(default_weight)
        self.weights: Dict[str, float] = dict(weights or {})
        self._lanes: Dict[str, List[Deque]] = {}
        self._credits: Dict[str, float] = {}
        self._order: Dict[str, int] = {}  # first-seen tie-break
        self._pending_points = 0

    # -- introspection -------------------------------------------------------

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued *points* (not chunks), total or for one tenant."""
        if tenant is None:
            return self._pending_points
        lanes = self._lanes.get(tenant)
        if not lanes:
            return 0
        return sum(len(chunk.tasks)
                   for lane in lanes for chunk in lane)

    def chunk_count(self) -> int:
        return sum(len(lane)
                   for lanes in self._lanes.values() for lane in lanes)

    def __len__(self) -> int:
        return self.chunk_count()

    def has_capacity(self, points: int) -> bool:
        return (self.max_depth is None
                or self._pending_points + points <= self.max_depth)

    # -- mutation ------------------------------------------------------------

    def push(self, chunk, force: bool = False) -> None:
        """Enqueue one chunk (``chunk.tenant`` / ``chunk.priority`` /
        ``chunk.tasks`` are the scheduling attributes).

        ``force=True`` bypasses the depth bound — used for re-queues
        (lease expiry, retries): work already admitted must never be
        dropped by backpressure aimed at *new* submissions.
        """
        points = len(chunk.tasks)
        if not force and not self.has_capacity(points):
            raise QueueFull(self._pending_points,
                            self.max_depth or 0, points)
        tenant = chunk.tenant
        lanes = self._lanes.get(tenant)
        if lanes is None:
            lanes = [deque() for _ in PRIORITIES]
            self._lanes[tenant] = lanes
            self._credits.setdefault(tenant, 0.0)
            self._order.setdefault(tenant, len(self._order))
        try:
            lane = PRIORITIES.index(chunk.priority)
        except ValueError:
            raise ValueError(
                f"unknown priority {chunk.priority!r}; "
                f"expected one of {PRIORITIES}")
        lanes[lane].append(chunk)
        self._pending_points += points

    def pop(self):
        """Dequeue the next chunk under the fair-share policy, skipping
        chunks whose job was cancelled; ``None`` when empty."""
        while True:
            chunk = self._pop_once()
            if chunk is None:
                return None
            if getattr(chunk, "cancelled", False):
                continue
            return chunk

    def _pop_once(self):
        active = [t for t, lanes in self._lanes.items()
                  if any(lanes)]
        if not active:
            return None
        round_weight = sum(self.weight(t) for t in active)
        for tenant in active:
            self._credits[tenant] += self.weight(tenant)
        # highest credit wins; first-seen order breaks exact ties so
        # equal-weight tenants alternate deterministically
        selected = max(
            active,
            key=lambda t: (self._credits[t], -self._order[t]))
        self._credits[selected] -= round_weight
        for lane in self._lanes[selected]:
            if lane:
                chunk = lane.popleft()
                self._pending_points -= len(chunk.tasks)
                return chunk
        raise AssertionError("active tenant had no queued chunk")

    def discard_job(self, job_id: str) -> int:
        """Drop all queued chunks of one job; returns points removed."""
        removed = 0
        for lanes in self._lanes.values():
            for lane in lanes:
                keep = deque()
                while lane:
                    chunk = lane.popleft()
                    if chunk.job_id == job_id:
                        removed += len(chunk.tasks)
                    else:
                        keep.append(chunk)
                lane.extend(keep)
        self._pending_points -= removed
        return removed
