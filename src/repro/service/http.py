"""Minimal asyncio HTTP/1.1 framing for the campaign service.

The service deliberately depends on nothing beyond the standard
library, so this module implements just enough of HTTP/1.1 to carry a
JSON control plane plus long-lived streaming responses:

* request parsing — request line, headers, ``Content-Length`` bodies
  (the only body framing the service accepts);
* :class:`Response` — fixed JSON/plain responses with
  ``Content-Length``;
* :class:`StreamingResponse` — an async iterator of byte chunks
  written with ``Connection: close`` delimiting (no chunked coding:
  every stdlib and curl client understands read-to-EOF), used for the
  JSONL/SSE point streams;
* a regex route table dispatching ``(method, path)`` to handlers.

Every response closes the connection — the service's clients open one
connection per call, which keeps the framing trivial and stateless.
"""

from __future__ import annotations

import asyncio
import json
import logging
import re
import socket
from typing import (
    Any,
    AsyncIterator,
    Awaitable,
    Callable,
    Dict,
    List,
    Optional,
    Tuple,
    Union,
)
from urllib.parse import parse_qsl, unquote, urlsplit

logger = logging.getLogger(__name__)

#: Hard limits keeping one malformed client from exhausting the server.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Payload Too Large",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """Raised by handlers to produce a structured JSON error response."""

    def __init__(self, status: int, message: str,
                 **details: Any):
        super().__init__(message)
        self.status = status
        self.payload = {"error": message, **details}


class Request:
    """One parsed HTTP request."""

    def __init__(self, method: str, target: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        parts = urlsplit(target)
        self.path = unquote(parts.path)
        self.query: Dict[str, str] = dict(parse_qsl(parts.query))
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}")


class Response:
    """A complete (non-streaming) response."""

    def __init__(self, status: int = 200, body: bytes = b"",
                 content_type: str = "application/json",
                 headers: Optional[Dict[str, str]] = None):
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        return cls(status=status, body=body)

    @classmethod
    def no_content(cls) -> "Response":
        return cls(status=204)

    def header_block(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}",
                 f"Content-Type: {self.content_type}",
                 f"Content-Length: {len(self.body)}",
                 "Connection: close"]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()


class StreamingResponse:
    """A response whose body is produced incrementally.

    ``chunks`` is an async iterator of ``bytes``; the connection close
    marks the end of the stream.  Used for the per-point JSONL and SSE
    streams, where each chunk is one complete line/event.
    """

    def __init__(self, chunks: AsyncIterator[bytes],
                 content_type: str = "application/x-ndjson",
                 status: int = 200):
        self.chunks = chunks
        self.content_type = content_type
        self.status = status

    def header_block(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        return (f"HTTP/1.1 {self.status} {reason}\r\n"
                f"Content-Type: {self.content_type}\r\n"
                "Cache-Control: no-store\r\n"
                "Connection: close\r\n\r\n").encode()


Handler = Callable[..., Awaitable[Union[Response, StreamingResponse]]]


class Router:
    """Regex route table: ``(method, pattern) -> handler``.

    Patterns use named groups (``/v1/jobs/(?P<job_id>[^/]+)``) passed
    to the handler as keyword arguments after the request.
    """

    def __init__(self) -> None:
        self._routes: List[Tuple[str, re.Pattern, Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        self._routes.append(
            (method.upper(), re.compile(f"^{pattern}$"), handler))

    def dispatch(self, request: Request
                 ) -> Tuple[Handler, Dict[str, str]]:
        allowed: List[str] = []
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            return handler, match.groupdict()
        if allowed:
            raise HttpError(405, "method not allowed",
                            allowed=sorted(set(allowed)))
        raise HttpError(404, f"no such resource: {request.path}")


async def read_request(reader: asyncio.StreamReader
                       ) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, _version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, "request body too large")
    body = await reader.readexactly(length) if length else b""
    return Request(method.upper(), target, headers, body)


async def write_response(writer: asyncio.StreamWriter,
                         response: Union[Response, StreamingResponse]
                         ) -> None:
    writer.write(response.header_block())
    if isinstance(response, Response):
        if response.body:
            writer.write(response.body)
        await writer.drain()
        return
    await writer.drain()
    async for chunk in response.chunks:
        writer.write(chunk)
        await writer.drain()


async def handle_connection(router: Router,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve exactly one request on a fresh connection."""
    try:
        try:
            request = await read_request(reader)
            if request is None:
                return
            handler, groups = router.dispatch(request)
            response = await handler(request, **groups)
        except HttpError as exc:
            response = Response.json(exc.payload, status=exc.status)
        except (ConnectionError, asyncio.CancelledError):
            raise
        except Exception:
            logger.exception("unhandled error serving request")
            response = Response.json({"error": "internal error"},
                                     status=500)
        await write_response(writer, response)
    except (ConnectionError, asyncio.IncompleteReadError):
        pass  # client went away mid-exchange; nothing to salvage
    finally:
        try:
            # shutdown() acts on the socket, not the fd — the FIN goes
            # out even when a forked pool worker inherited a duplicate
            # of this fd, so EOF-delimited streams always terminate
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_WR)
                except OSError:
                    pass
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_http_server(router: Router, host: str, port: int):
    """Bind and return an ``asyncio.Server`` dispatching to ``router``."""

    async def _client(reader, writer):
        await handle_connection(router, reader, writer)

    return await asyncio.start_server(_client, host=host, port=port,
                                      limit=MAX_HEADER_BYTES)
