"""Pure-python synchronous client for the campaign service.

Built on ``http.client`` only — usable from any script, test, or
remote worker host with no dependencies beyond the standard library.
One HTTP connection per call (the service closes connections after
each response), so a :class:`ServiceClient` is cheap, stateless and
thread-safe by construction.

    client = ServiceClient("http://127.0.0.1:8321")
    job = client.submit("examples/campaign_adc_yield.py", tenant="ana")
    for record in client.stream(job["id"]):
        print(record["index"], record["metrics"])
    print(client.results(job["id"])["fingerprint"])
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import urlsplit


class ServiceError(Exception):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: Any):
        message = payload.get("error") if isinstance(payload, dict) \
            else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload


class ServiceClient:
    """Synchronous client; see the module docstring."""

    def __init__(self, url: str = "http://127.0.0.1:8321",
                 timeout: float = 30.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// is supported; got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8321
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _connect(self, timeout: Optional[float]
                 ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 timeout: Optional[float] = -1.0) -> Any:
        if timeout == -1.0:
            timeout = self.timeout
        connection = self._connect(timeout)
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode()
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body,
                               headers=headers)
            response = connection.getresponse()
            raw = response.read()
            if response.status == 204:
                return None
            data = json.loads(raw.decode()) if raw else {}
            if response.status >= 400:
                raise ServiceError(response.status, data)
            return data
        finally:
            connection.close()

    # -- control plane -------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/healthz")

    def submit(self, spec: str, tenant: str = "default",
               priority: str = "normal",
               root_seed: Optional[int] = None,
               limit: Optional[int] = None,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               chunk_size: Optional[int] = None,
               description: str = "",
               observe: Optional[bool] = None) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"spec": spec, "tenant": tenant,
                                   "priority": priority}
        for name, value in (("root_seed", root_seed),
                            ("limit", limit), ("timeout", timeout),
                            ("retries", retries),
                            ("chunk_size", chunk_size)):
            if value is not None:
                payload[name] = value
        if description:
            payload["description"] = description
        if observe is not None:
            payload["observe"] = observe
        return self._request("POST", "/v1/jobs", payload)

    def jobs(self, tenant: Optional[str] = None) -> List[Dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/results")

    def telemetry(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}/telemetry")

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """The job's stitched Chrome/Perfetto trace payload."""
        return self._request("GET", f"/v1/jobs/{job_id}/trace")

    def usage(self, tenant: str) -> Dict[str, Any]:
        """Per-tenant SLO accounting."""
        return self._request("GET", f"/v1/tenants/{tenant}/usage")

    def metrics(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/metrics")

    def prometheus(self, timeout: Optional[float] = -1.0) -> str:
        """The raw ``GET /metrics`` Prometheus text exposition."""
        if timeout == -1.0:
            timeout = self.timeout
        connection = self._connect(timeout)
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            raw = response.read()
            if response.status >= 400:
                try:
                    data = json.loads(raw.decode()) if raw else {}
                except json.JSONDecodeError:
                    data = raw.decode(errors="replace")
                raise ServiceError(response.status, data)
            return raw.decode("utf-8")
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: Optional[float] = None,
             poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "cancelled"):
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def stream(self, job_id: str,
               timeout: Optional[float] = None
               ) -> Iterator[Dict[str, Any]]:
        """Yield per-point record dicts as the job computes them,
        ending when the job reaches a terminal state."""
        connection = self._connect(timeout)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                data = json.loads(raw.decode()) if raw else {}
                raise ServiceError(response.status, data)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            connection.close()

    # -- worker plane --------------------------------------------------------

    def lease(self, worker: str,
              timeout: Optional[float] = -1.0
              ) -> Optional[Dict[str, Any]]:
        """Pull one chunk of work; ``None`` when the queue is idle."""
        return self._request("POST", "/v1/workers/lease",
                             {"worker": worker}, timeout=timeout)

    def complete(self, worker: str, job_id: str, chunk_id: str,
                 outcomes: List[Dict[str, Any]],
                 timeout: Optional[float] = -1.0,
                 telemetry: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "worker": worker, "job_id": job_id,
            "chunk_id": chunk_id, "outcomes": outcomes}
        if telemetry is not None:
            payload["telemetry"] = telemetry
        return self._request("POST", "/v1/workers/complete", payload,
                             timeout=timeout)
