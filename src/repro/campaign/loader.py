"""Spec-file loading: ``file.py`` / ``file.py::name`` → :class:`Campaign`.

One spec file conventionally defines a module-level ``CAMPAIGN`` (or
several named campaigns).  Both the CLI (``python -m repro.campaign``)
and the campaign service — server-side at submit time, worker-side
when executing leased chunks — resolve campaigns through this module,
so a spec reference submitted over HTTP means the same thing on every
host that can see the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Tuple

from ..core.resolve import (
    ResolutionError,
    load_module_from_path,
    split_reference,
)
from .spec import Campaign


class SpecError(Exception):
    """A campaign spec file could not be loaded or is ambiguous."""


def load_spec(path) -> Dict[str, Campaign]:
    """Import ``path`` and collect its module-level campaigns."""
    path = Path(path)
    try:
        module = load_module_from_path(
            path, module_name=f"repro_campaign_spec_{path.stem}")
    except ResolutionError as exc:
        raise SpecError(str(exc)) from exc
    campaigns: Dict[str, Campaign] = {}
    for attr, value in vars(module).items():
        if isinstance(value, Campaign):
            campaigns[attr] = value
    if not campaigns:
        raise SpecError(
            f"{path} defines no Campaign objects "
            "(expected e.g. a module-level CAMPAIGN)")
    return campaigns


def select_campaign(campaigns: Dict[str, Campaign],
                    requested: str) -> Campaign:
    """Pick one campaign by ``Campaign.name`` (or attribute name)."""
    if requested:
        for value in campaigns.values():
            if value.name == requested:
                return value
        if requested in campaigns:
            return campaigns[requested]
        known = ", ".join(sorted(c.name for c in campaigns.values()))
        raise SpecError(
            f"no campaign named {requested!r} (known: {known})")
    if "CAMPAIGN" in campaigns:
        return campaigns["CAMPAIGN"]
    if len(campaigns) == 1:
        return next(iter(campaigns.values()))
    known = ", ".join(sorted(c.name for c in campaigns.values()))
    raise SpecError(
        f"spec defines several campaigns ({known}); pick one with "
        "--campaign (CLI) or a spec reference like "
        "'spec.py::name' (service)")


def split_spec_ref(ref: str) -> Tuple[Path, Optional[str]]:
    """``"spec.py::name"`` → ``(Path("spec.py"), "name")``."""
    target, attr = split_reference(str(ref))
    return Path(target), attr


def resolve_spec_ref(ref: str) -> Campaign:
    """Resolve a spec reference to a single :class:`Campaign`.

    ``ref`` is ``"path/to/spec.py"`` (the file must then define exactly
    one campaign, or one named ``CAMPAIGN``) or
    ``"path/to/spec.py::campaign-name"``.
    """
    path, name = split_spec_ref(ref)
    return select_campaign(load_spec(path), name or "")
