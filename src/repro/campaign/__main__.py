"""Command-line campaign driver.

Usage::

    python -m repro.campaign SPEC.py [--campaign NAME] [--workers N]
                                     [--out DIR] [--root-seed N]
                                     [--limit N] [--timeout S]
                                     [--no-cache] [--list] [--columns ...]
                                     [--observe DIR]

``SPEC.py`` is any Python file defining one or more module-level
:class:`~repro.campaign.spec.Campaign` objects (conventionally one
named ``CAMPAIGN``).  The driver loads it, runs the selected campaign
on a process pool, prints the aggregated result table and summary, and
writes ``records.jsonl`` (plus the result cache) under ``--out``.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path
from typing import List

from .loader import SpecError, load_spec, select_campaign  # noqa: F401
from .runner import CampaignRunner


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run a simulation campaign (sweep / corners / "
                    "Monte Carlo) from a spec file.")
    parser.add_argument("spec", type=Path,
                        help="Python file defining Campaign objects")
    parser.add_argument("--campaign", default="",
                        help="campaign name (default: CAMPAIGN, or the "
                             "only one defined)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (<=1: serial)")
    parser.add_argument("--out", type=Path, default=None,
                        help="output directory for records.jsonl and "
                             "the result cache")
    parser.add_argument("--root-seed", type=int, default=None,
                        help="override the campaign's root seed")
    parser.add_argument("--limit", type=int, default=None,
                        help="run only the first N points (smoke runs)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-run wall-clock timeout [s]")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--columns", nargs="*", default=None,
                        help="param/metric columns for the table")
    parser.add_argument("--list", action="store_true",
                        help="list the campaigns in the spec and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the result table")
    parser.add_argument("--observe", type=Path, default=None,
                        metavar="DIR",
                        help="export campaign telemetry (trace.json, "
                             "trace.jsonl, metrics.json) to DIR — "
                             "checkable with `python -m repro.observe "
                             "check DIR`; serial runs include "
                             "per-point simulation spans")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        campaigns = load_spec(args.spec)

        if args.list:
            for campaign in campaigns.values():
                print(f"{campaign.name}: {len(campaign.points())} "
                      "points"
                      + (f" — {campaign.description}"
                         if campaign.description else ""))
            return 0

        campaign = select_campaign(campaigns, args.campaign)
    except SpecError as exc:
        raise SystemExit(str(exc))
    if args.root_seed is not None:
        campaign.root_seed = args.root_seed
    if args.limit is not None:
        # Seeds are assigned by index before truncation elsewhere;
        # slicing the space keeps the smoke run a strict prefix.
        from .spec import FixedPoints
        campaign.space = FixedPoints(
            campaign.space.points()[:args.limit])
        campaign._points_cache = None

    start = time.perf_counter()
    runner = CampaignRunner(
        campaign,
        workers=args.workers,
        timeout=args.timeout,
        out_dir=args.out,
        use_cache=not args.no_cache,
        observe=args.observe is not None,
    )
    results = runner.run()
    elapsed = time.perf_counter() - start

    if not args.quiet:
        print(results.format_table(args.columns))
        print()
    stats = runner.stats
    print(f"campaign {campaign.name!r}: {stats['total']} runs "
          f"({stats['cached']} cached, {stats['executed']} executed, "
          f"{stats['retried']} retried, {stats['failed']} failed) "
          f"in {elapsed:.2f}s with {max(1, args.workers)} worker(s)")
    if args.out is not None:
        print(f"records: {args.out / 'records.jsonl'}")
    if args.observe is not None and runner.telemetry is not None:
        paths = runner.telemetry.export(args.observe)
        print(f"telemetry: {paths['chrome'].parent}")
    return 1 if stats["failed"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
