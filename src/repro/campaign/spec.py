"""Declarative campaign specifications.

A *parameter space* enumerates the points of a simulation campaign as
plain ``dict``s.  Three primitives cover the classic AMS verification
workloads:

* :class:`Sweep` — cartesian grid over named value lists (design-space
  exploration);
* :class:`Corners` — named process/operating corners, each a parameter
  dict (the PVT-corner style of analog signoff);
* :class:`MonteCarlo` — ``n`` statistical samples of one base point,
  distinguished only by their per-run random stream (mismatch/yield
  analysis à la Bonnerud's pipelined ADC, seed work [2]).

Spaces compose: ``a * b`` is the cartesian product (merged dicts),
``a + b`` the concatenation.  A :class:`Campaign` pairs a space with the
user-supplied model under test — either a ``run(params) -> metrics``
function, or a ``build(params) -> Simulator`` factory plus a duration
and a ``metrics(top) -> dict`` probe — and a root seed from which every
run's independent random stream is spawned.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from .. import __version__ as _REPRO_VERSION
from ..verify.code.fingerprint import code_fingerprint


class ParamSpace:
    """Base class: an ordered, finite enumeration of parameter dicts."""

    def points(self) -> List[Dict[str, Any]]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self):
        return iter(self.points())

    def __mul__(self, other: "ParamSpace") -> "ParamSpace":
        return Product(self, other)

    def __add__(self, other: "ParamSpace") -> "ParamSpace":
        return Concat(self, other)


class FixedPoints(ParamSpace):
    """An explicit list of parameter dicts."""

    def __init__(self, points: Iterable[Mapping[str, Any]]):
        self._points = [dict(p) for p in points]

    def points(self) -> List[Dict[str, Any]]:
        return [dict(p) for p in self._points]


class Sweep(ParamSpace):
    """Cartesian grid: ``Sweep({"a": [1, 2], "b": [10, 20]})`` yields
    the four combinations in row-major (last axis fastest) order."""

    def __init__(self, axes: Mapping[str, Iterable[Any]]):
        if not axes:
            raise ValueError("Sweep needs at least one axis")
        self.axes = {name: list(values) for name, values in axes.items()}
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"sweep axis {name!r} is empty")

    def points(self) -> List[Dict[str, Any]]:
        names = list(self.axes)
        return [dict(zip(names, combo))
                for combo in itertools.product(
                    *(self.axes[n] for n in names))]


class Corners(ParamSpace):
    """Named corners: ``Corners({"slow": {...}, "fast": {...}})``.

    Each point carries its corner name under ``corner_key`` (default
    ``"corner"``) alongside the corner's parameters.
    """

    def __init__(self, corners: Mapping[str, Mapping[str, Any]],
                 corner_key: str = "corner"):
        if not corners:
            raise ValueError("Corners needs at least one corner")
        self.corners = {name: dict(params)
                        for name, params in corners.items()}
        self.corner_key = corner_key

    def points(self) -> List[Dict[str, Any]]:
        return [{self.corner_key: name, **params}
                for name, params in self.corners.items()]


class MonteCarlo(ParamSpace):
    """``n`` statistical samples of one base point.

    Each point is the base dict plus its sample index under
    ``index_key`` (default ``"mc_index"``); the per-run randomness
    comes from the campaign's spawned seed, not from the params.
    """

    def __init__(self, n: int, base: Optional[Mapping[str, Any]] = None,
                 index_key: str = "mc_index"):
        if n < 1:
            raise ValueError("MonteCarlo needs n >= 1 samples")
        self.n = n
        self.base = dict(base or {})
        self.index_key = index_key

    def points(self) -> List[Dict[str, Any]]:
        return [{**self.base, self.index_key: k} for k in range(self.n)]


class Product(ParamSpace):
    """Cartesian product of two spaces; point dicts are merged (the
    right operand wins on key collisions)."""

    def __init__(self, left: ParamSpace, right: ParamSpace):
        self.left = left
        self.right = right

    def points(self) -> List[Dict[str, Any]]:
        return [{**a, **b}
                for a in self.left.points()
                for b in self.right.points()]


class Concat(ParamSpace):
    """Concatenation of two spaces."""

    def __init__(self, left: ParamSpace, right: ParamSpace):
        self.left = left
        self.right = right

    def points(self) -> List[Dict[str, Any]]:
        return self.left.points() + self.right.points()


def code_version_for(fn: Callable,
                     *extra: Optional[Callable]) -> str:
    """Content hash identifying the code behind a run function.

    Combines the framework version with
    :func:`~repro.verify.code.code_fingerprint` of ``fn`` (and of any
    ``extra`` callables, e.g. a campaign's ``metrics`` probe): the
    normalized AST of the *executed* function bodies, one helper level
    deep.  Editing the model invalidates cached results; editing
    comments, docstrings, or unrelated functions in the same file does
    not — unlike the whole-file digest this used before.
    """
    digest = hashlib.sha256()
    digest.update(_REPRO_VERSION.encode())
    digest.update(code_fingerprint(fn).encode())
    for other in extra:
        if other is not None:
            digest.update(b";")
            digest.update(code_fingerprint(other).encode())
    return digest.hexdigest()[:16]


@dataclass
class Campaign:
    """A named, seeded campaign: parameter space × model under test.

    Exactly one of two execution styles must be supplied:

    * ``run`` — ``run(params) -> dict`` does everything itself
      (build, simulate, measure); the per-run seed arrives inside
      ``params`` under ``seed_key``.
    * ``build`` + ``duration`` (+ optional ``metrics``) —
      ``build(params)`` returns a :class:`~repro.core.Simulator`
      (constructed *inside* the worker process), the runner drives it
      for ``duration``, and ``metrics(top_module)`` extracts the
      result dict.

    ``root_seed`` feeds ``numpy.random.SeedSequence``; run ``k`` always
    receives the ``k``-th spawned child, so serial and parallel
    execution draw identical streams.
    """

    name: str
    space: ParamSpace
    run: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None
    build: Optional[Callable[[Dict[str, Any]], Any]] = None
    duration: Any = None
    metrics: Optional[Callable[[Any], Dict[str, Any]]] = None
    root_seed: int = 0
    #: params key under which the spawned per-run seed is injected
    #: (``None`` disables seed injection for fully deterministic runs).
    seed_key: Optional[str] = "seed"
    #: overrides :func:`code_version_for` in cache keys.
    code_version: Optional[str] = None
    description: str = ""
    _points_cache: Optional[List[Dict[str, Any]]] = field(
        default=None, init=False, repr=False, compare=False)

    def __post_init__(self):
        if (self.run is None) == (self.build is None):
            raise ValueError(
                "Campaign needs exactly one of run= or build=")
        if self.build is not None and self.duration is None:
            raise ValueError(
                "Campaign(build=...) also needs duration=")

    def points(self) -> List[Dict[str, Any]]:
        if self._points_cache is None:
            self._points_cache = self.space.points()
        return self._points_cache

    def target(self) -> Callable:
        """The callable whose code identity keys the cache."""
        return self.run if self.run is not None else self.build

    def resolved_code_version(self) -> str:
        if self.code_version is not None:
            return self.code_version
        return code_version_for(self.target(), self.metrics)
