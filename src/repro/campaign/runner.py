"""Parallel campaign execution.

:class:`CampaignRunner` turns a :class:`~repro.campaign.spec.Campaign`
into a :class:`~repro.campaign.records.CampaignResults`:

* **deterministic seeding** — run ``k`` receives the ``k``-th child of
  ``SeedSequence(root_seed)`` (as a 64-bit int inside its params), so
  any execution order, worker count, or cache state produces
  bit-identical metrics;
* **parallelism** — runs fan out over a
  ``concurrent.futures.ProcessPoolExecutor`` in chunks (amortizing
  process round-trips); ``workers <= 1`` executes inline through the
  *same* code path, which is what makes the determinism guarantee
  testable;
* **robustness** — each run is wrapped in a per-run wall-clock timeout
  (``SIGALRM``-based, POSIX) and failing runs are retried once before
  being recorded as ``status="failed"``; one crashing point never kills
  the campaign;
* **caching** — finished points are stored in a content-addressed
  :class:`~repro.campaign.cache.ResultCache`; re-running a campaign
  executes only changed points.

Worker processes receive only the campaign's *factory callables* and
plain parameter dicts — never a live :class:`~repro.core.Simulator` —
so every worker elaborates its own kernel from scratch (the
``Kernel._current`` process-global makes sharing elaborated state
across processes unsafe by construction; ``Simulator.__reduce__``
enforces this).
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.errors import BindingError, ElaborationError, SchedulingError
from ..lib.seeding import seed_to_int, spawn_seed_sequences
from ..observe import Telemetry
from ..observe.metrics import LATENCY_BOUNDS
from ..resilience.health import diagnostic_of
from .cache import ResultCache, cache_key
from .records import CampaignResults, RunRecord
from .spec import Campaign

logger = logging.getLogger(__name__)

#: (run, build, duration, metrics, checkpoint_every) — the picklable
#: execution target shipped to worker processes instead of a live
#: Campaign/Simulator.
RunTarget = Tuple[Optional[Callable], Optional[Callable], Any,
                  Optional[Callable], Any]

#: (index, params, attempt) — one unit of work.
RunTask = Tuple[int, Dict[str, Any], int]

#: Failures that re-running cannot fix: the model itself is broken
#: (bad hierarchy, unschedulable dataflow, unbound ports, wrong types).
#: Everything else — numerical trouble, timeouts, resource hiccups —
#: is worth the retry-once policy.
PERMANENT_FAILURES = (ElaborationError, SchedulingError, BindingError,
                      TypeError)


def classify_failure(exc: BaseException) -> str:
    """``"permanent"`` (do not retry) or ``"retryable"``."""
    return ("permanent" if isinstance(exc, PERMANENT_FAILURES)
            else "retryable")


class RunTimeout(Exception):
    """A single campaign run exceeded its wall-clock budget."""


@contextmanager
def _deadline(seconds: Optional[float]):
    """Raise :class:`RunTimeout` after ``seconds`` of wall-clock time.

    Uses ``SIGALRM`` and therefore only arms in the main thread of a
    process on POSIX — exactly the situation inside a
    ``ProcessPoolExecutor`` worker.  Elsewhere it is a no-op.
    """
    usable = (
        seconds is not None and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise RunTimeout(f"run exceeded {seconds:g}s timeout")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
    except (ValueError, OSError) as exc:
        # Some embeddings (restricted interpreters, exotic threading
        # setups) refuse signal handlers even on the main thread; run
        # without the wall-clock guard rather than failing the point.
        logger.warning(
            "cannot install SIGALRM handler (%s); running without "
            "the %gs per-run timeout", exc, seconds,
        )
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _execute_point(target: RunTarget, params: Dict[str, Any],
                   timeout: Optional[float],
                   hub: Optional[Telemetry] = None) -> Dict[str, Any]:
    """Run one campaign point; never raises.

    When a :class:`~repro.observe.Telemetry` ``hub`` is given,
    build-style points record their simulation spans into it (the hub
    is installed on the freshly built simulator unless the build
    already attached one), so an executor's per-point kernel activity
    lands on the campaign/job trace.
    """
    run, build, duration, metrics_fn, checkpoint_every = target
    start = time.perf_counter()
    simulator = None
    failure_kind = None
    diagnostic = None
    checkpoint = None
    telemetry_snapshot = None
    try:
        with _deadline(timeout):
            if run is not None:
                metrics = run(dict(params))
            else:
                simulator = build(dict(params))
                if hub is not None \
                        and getattr(simulator, "telemetry",
                                    None) is None:
                    simulator.telemetry = hub
                    simulator.kernel.install_telemetry(hub)
                if checkpoint_every is not None:
                    simulator.run(duration,
                                  checkpoint_every=checkpoint_every)
                else:
                    simulator.run(duration)
                snapshot = getattr(simulator, "metrics_snapshot", None)
                if snapshot is not None:
                    telemetry_snapshot = snapshot()
                top = simulator.top
                if metrics_fn is not None:
                    metrics = metrics_fn(top)
                elif hasattr(top, "metrics"):
                    metrics = top.metrics()
                else:
                    raise TypeError(
                        "Campaign(build=...) needs metrics= or a "
                        "top.metrics() method")
        if not isinstance(metrics, dict):
            raise TypeError(
                f"campaign run returned {type(metrics).__name__}, "
                "expected a metrics dict")
        status, error = "ok", None
    except Exception as exc:  # one bad point must not kill the campaign
        metrics = {}
        status = "failed"
        error = f"{type(exc).__name__}: {exc}"
        failure_kind = classify_failure(exc)
        report = diagnostic_of(exc)
        if report is not None:
            diagnostic = report.to_dict()
        manager = getattr(simulator, "checkpoint_manager", None)
        if manager is not None:
            latest = manager.latest()
            if latest is not None:
                checkpoint = latest.to_bytes()
    return {
        "status": status,
        "metrics": metrics,
        "error": error,
        "failure_kind": failure_kind,
        "diagnostic": diagnostic,
        "checkpoint": checkpoint,
        "metrics_telemetry": telemetry_snapshot,
        "wall_time": time.perf_counter() - start,
    }


def _execute_chunk(target: RunTarget, tasks: List[RunTask],
                   timeout: Optional[float],
                   hub: Optional[Telemetry] = None
                   ) -> List[Dict[str, Any]]:
    """Worker entry point: execute a chunk of runs, return result dicts."""
    results = []
    for index, params, attempt in tasks:
        if hub is not None:
            with hub.tracer.span("point.run", track="points",
                                 index=index, attempt=attempt) as span:
                outcome = _execute_point(target, params, timeout, hub)
                span.set(status=outcome["status"])
            hub.metrics.counter("worker.points",
                                status=outcome["status"]).inc()
            hub.metrics.histogram(
                "worker.point.seconds",
                bounds=LATENCY_BOUNDS).observe(outcome["wall_time"])
        else:
            outcome = _execute_point(target, params, timeout)
        outcome["index"] = index
        outcome["attempt"] = attempt
        results.append(outcome)
    return results


def _chunked(tasks: List[RunTask], chunk_size: int
             ) -> List[List[RunTask]]:
    return [tasks[i:i + chunk_size]
            for i in range(0, len(tasks), chunk_size)]


def plan_records(campaign: Campaign) -> List[RunRecord]:
    """Seeded skeleton records for every campaign point, in index order.

    Run ``k`` receives the ``k``-th child of
    ``SeedSequence(root_seed)`` injected under ``seed_key``, so any
    executor — the in-process runner, the campaign service's sharded
    workers, a remote host — derives identical parameters for the same
    point.  Shared by :class:`CampaignRunner` and
    :mod:`repro.service`.
    """
    points = campaign.points()
    if campaign.seed_key is not None:
        children = spawn_seed_sequences(campaign.root_seed, len(points))
        seeds = [seed_to_int(child) for child in children]
    else:
        seeds = [None] * len(points)
    records = []
    for index, (point, seed) in enumerate(zip(points, seeds)):
        params = dict(point)
        if campaign.seed_key is not None:
            params.setdefault(campaign.seed_key, seed)
        records.append(RunRecord(index=index, params=params,
                                 seed=seed, status="pending"))
    return records


#: Outcome keys that survive HTTP transport between the service and
#: its remote workers.  ``checkpoint`` (raw pickle bytes) is local-only:
#: it is neither JSON-representable nor meaningful off-host.
TRANSPORTABLE_OUTCOME_KEYS = (
    "index", "attempt", "status", "metrics", "error", "failure_kind",
    "diagnostic", "metrics_telemetry", "wall_time",
)


def outcome_to_json(outcome: Dict[str, Any]) -> Dict[str, Any]:
    """Strip a :func:`_execute_point` outcome down to its JSON-safe,
    transportable fields (see :data:`TRANSPORTABLE_OUTCOME_KEYS`)."""
    return {key: outcome.get(key) for key in TRANSPORTABLE_OUTCOME_KEYS}


class CampaignRunner:
    """Executes a :class:`Campaign`; see the module docstring.

    Parameters
    ----------
    campaign:
        The campaign to run.
    workers:
        Process count; ``<= 1`` runs inline (serially) in this process.
    cache_dir:
        Directory for the content-addressed result cache; ``None``
        disables caching (every point executes).
    timeout:
        Per-run wall-clock budget in seconds (``None``: unlimited).
    retries:
        How many times a failed run is re-attempted (default 1: the
        "retry once" policy).
    chunk_size:
        Runs per worker task; ``None`` picks ``ceil(n / (4·workers))``
        so each worker sees ~4 chunks (load balance vs. dispatch cost).
    out_dir:
        If given, ``records.jsonl`` is written there after the run
        (and, unless ``cache_dir`` is set or caching disabled, the
        cache lives in ``out_dir/cache``).
    verify:
        Static pre-flight verification of build-style campaign points
        (see :mod:`repro.verify`): each pending point's model is built
        in the parent process and statically checked; points with
        verification errors are recorded as ``status="failed"`` /
        ``failure_kind="static"`` without ever forking a worker.
        ``"auto"`` (default) enables this whenever the campaign uses
        ``build=``; ``"on"`` / ``"off"`` force it.
    """

    def __init__(self, campaign: Campaign, workers: int = 1,
                 cache_dir=None, timeout: Optional[float] = None,
                 retries: int = 1, chunk_size: Optional[int] = None,
                 out_dir=None, use_cache: bool = True,
                 progress: Optional[Callable[[RunRecord], None]] = None,
                 checkpoint_every=None, verify: str = "auto",
                 observe: Any = None):
        self.campaign = campaign
        #: Campaign-level telemetry hub (``Telemetry.coerce`` rules).
        #: Serial execution threads it through every point, so the
        #: exported trace carries per-point simulation spans; process
        #: pools record dispatch spans and stats in the parent (worker
        #: traces cross process boundaries via the campaign *service*,
        #: not the in-process runner).
        self.telemetry = Telemetry.coerce(observe)
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.chunk_size = chunk_size
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.progress = progress
        #: SimTime interval for in-run checkpoints (build-style
        #: campaigns only); a failed point's last checkpoint is then
        #: persisted next to its diagnostic under ``out_dir/failures``.
        self.checkpoint_every = checkpoint_every
        if cache_dir is None and use_cache and self.out_dir is not None:
            cache_dir = self.out_dir / "cache"
        self.cache = (ResultCache(cache_dir)
                      if use_cache and cache_dir is not None else None)
        if verify not in ("auto", "on", "off"):
            raise ValueError(
                f"verify must be 'auto', 'on', or 'off'; got "
                f"{verify!r}")
        self.verify = verify
        self.stats: Dict[str, int] = {}
        self._ruleset: Optional[str] = None

    # -- planning -----------------------------------------------------------

    def _plan(self) -> List[RunRecord]:
        """Seeded skeleton records for every point, in index order."""
        return plan_records(self.campaign)

    def _cache_key(self, record: RunRecord) -> str:
        return cache_key(self.campaign.name, record.params,
                         self._code_version,
                         self._ruleset_version())

    def _ruleset_version(self) -> str:
        """The verifier ruleset version baked into cache keys, so
        cached results invalidate when the ruleset changes."""
        if self._ruleset is None:
            from ..verify import ruleset_version

            self._ruleset = ruleset_version()
        return self._ruleset

    def _verify_enabled(self) -> bool:
        if self.verify == "off":
            return False
        # Only build-style campaigns expose a model to analyze; a
        # run= callable is opaque to static verification.
        return self.campaign.build is not None

    def _preflight(self, tasks: List[RunTask],
                   by_index: Dict[int, RunRecord]) -> List[RunTask]:
        """Statically verify pending points in the parent process.

        Points whose models carry verification *errors* are recorded
        as ``failure_kind="static"`` failures (with the full JSON
        report persisted under ``out_dir/failures``) and dropped from
        the dispatch list — no worker is ever forked for them.  Points
        whose build itself raises fall through to normal execution,
        which already classifies build failures.
        """
        if not self._verify_enabled():
            return tasks
        from ..verify import verify_model

        runnable: List[RunTask] = []
        rejected = 0
        extra_code = [(f"{self.campaign.name}.build",
                       self.campaign.build)]
        if self.campaign.metrics is not None:
            extra_code.append((f"{self.campaign.name}.metrics",
                               self.campaign.metrics))
        for index, params, attempt in tasks:
            try:
                simulator = self.campaign.build(dict(params))
                report = verify_model(simulator.top,
                                      extra_code=extra_code)
            except Exception:
                runnable.append((index, params, attempt))
                continue
            if report.ok:
                runnable.append((index, params, attempt))
                continue
            rejected += 1
            record = by_index[index]
            record.status = "failed"
            record.failure_kind = "static"
            record.error = ("static verification failed: "
                            + "; ".join(d.format()
                                        for d in report.errors))
            self._persist_failure(record, {
                "diagnostic": {
                    "message": record.error,
                    "verification": report.to_dict(),
                },
            })
            if self.progress is not None:
                self.progress(record)
        self.stats["static"] = rejected
        return runnable

    # -- execution ----------------------------------------------------------

    def run(self) -> CampaignResults:
        campaign = self.campaign
        self._code_version = campaign.resolved_code_version()
        records = self._plan()
        by_index = {record.index: record for record in records}

        # 1. serve cache hits
        pending: List[RunTask] = []
        cached = 0
        for record in records:
            hit = (self.cache.get(self._cache_key(record))
                   if self.cache is not None else None)
            if hit is not None and hit.status == "ok":
                record.status = hit.status
                record.metrics = hit.metrics
                record.error = hit.error
                record.attempts = hit.attempts
                record.wall_time = hit.wall_time
                record.metrics_telemetry = hit.metrics_telemetry
                record.cached = True
                cached += 1
                if self.progress is not None:
                    self.progress(record)
            else:
                pending.append((record.index, record.params, 1))

        # 2. static pre-flight: reject broken models without forking
        self.stats = {}
        pending = self._preflight(pending, by_index)
        static = self.stats.get("static", 0)

        # 3. execute misses, retrying failures up to ``retries`` times
        executed = 0
        retried = 0
        target: RunTarget = (campaign.run, campaign.build,
                             campaign.duration, campaign.metrics,
                             self.checkpoint_every)
        while pending:
            outcomes = self._dispatch(target, pending)
            executed += len(outcomes)
            retry: List[RunTask] = []
            for outcome in outcomes:
                record = by_index[outcome["index"]]
                record.status = outcome["status"]
                record.metrics = outcome["metrics"]
                record.error = outcome["error"]
                record.failure_kind = outcome.get("failure_kind")
                record.metrics_telemetry = outcome.get(
                    "metrics_telemetry")
                record.wall_time += outcome["wall_time"]
                record.attempts = outcome["attempt"]
                if (outcome["status"] == "failed"
                        and outcome.get("failure_kind") != "permanent"
                        and outcome["attempt"] <= self.retries):
                    retry.append((record.index, record.params,
                                  outcome["attempt"] + 1))
                else:
                    if outcome["status"] == "failed":
                        self._persist_failure(record, outcome)
                    if self.progress is not None:
                        self.progress(record)
            retried += len(retry)
            pending = retry

        # 4. persist
        for record in records:
            if record.status == "ok" and not record.cached \
                    and self.cache is not None:
                self.cache.put(self._cache_key(record), record)

        self.stats = {
            "total": len(records),
            "cached": cached,
            "executed": executed,
            "retried": retried,
            "static": static,
            "failed": sum(1 for r in records if r.status == "failed"),
        }
        if self.telemetry is not None:
            for kind, value in self.stats.items():
                self.telemetry.metrics.counter(
                    "campaign.points", kind=kind).value = float(value)
        results = CampaignResults(records)
        if self.out_dir is not None:
            self.out_dir.mkdir(parents=True, exist_ok=True)
            results.write_jsonl(self.out_dir / "records.jsonl")
        return results

    def _persist_failure(self, record: RunRecord,
                         outcome: Dict[str, Any]) -> None:
        """Write a failed point's postmortem under ``out_dir/failures``:
        ``run_NNNNN.diagnostic.json`` always, plus
        ``run_NNNNN.checkpoint.pkl`` when an in-run checkpoint exists."""
        if self.out_dir is None:
            return
        failures = self.out_dir / "failures"
        failures.mkdir(parents=True, exist_ok=True)
        stem = f"run_{record.index:05d}"
        diagnostic = outcome.get("diagnostic") or {
            "message": record.error,
        }
        diagnostic = dict(diagnostic)
        diagnostic.setdefault("failure_kind", record.failure_kind)
        diagnostic.setdefault("params", record.params)
        diagnostic.setdefault("attempts", record.attempts)
        path = failures / f"{stem}.diagnostic.json"
        path.write_text(
            json.dumps(diagnostic, indent=2, sort_keys=True,
                       default=str) + "\n",
            encoding="utf-8",
        )
        checkpoint = outcome.get("checkpoint")
        if checkpoint is not None:
            (failures / f"{stem}.checkpoint.pkl").write_bytes(checkpoint)

    def _dispatch(self, target: RunTarget, tasks: List[RunTask]
                  ) -> List[Dict[str, Any]]:
        """Run ``tasks``, chunked, serially or on the process pool."""
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(tasks) // (4 * self.workers)))
        chunks = _chunked(tasks, chunk_size)
        hub = self.telemetry
        if self.workers <= 1 or len(tasks) <= 1:
            outcomes: List[Dict[str, Any]] = []
            for chunk in chunks:
                outcomes.extend(_execute_chunk(target, chunk,
                                               self.timeout, hub))
            return outcomes
        context = _fork_context()
        dispatch_span = (hub.tracer.span("campaign.dispatch",
                                         track="campaign",
                                         chunks=len(chunks),
                                         tasks=len(tasks))
                         if hub is not None else None)
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(_execute_chunk, target, chunk,
                                   self.timeout)
                       for chunk in chunks]
            outcomes = []
            for future in futures:
                outcomes.extend(future.result())
        if dispatch_span is not None:
            dispatch_span.close()
        return outcomes


def _fork_context():
    """Prefer ``fork`` so callables defined in CLI-loaded spec files
    resolve in workers without re-importing; fall back to the platform
    default elsewhere (e.g. Windows/macOS spawn)."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def run_campaign(campaign: Campaign, **kwargs) -> CampaignResults:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    return CampaignRunner(campaign, **kwargs).run()
