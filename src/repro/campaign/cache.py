"""Content-addressed on-disk result cache.

Each campaign point is keyed by the SHA-256 of its canonical identity —
campaign name, full parameter dict (seed included) and the code-version
hash of the model under test.  A key maps to one JSON file holding the
finished :class:`~repro.campaign.records.RunRecord`; re-running a
campaign therefore only executes points whose parameters or code have
changed.  Failed runs are *not* cached, so transient failures retry on
the next invocation.

The store is safe for concurrent writers (worker fan-out, parallel
campaign invocations sharing a cache directory): records are written to
a unique temp file and ``os.replace``-d into place atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from .records import RunRecord, canonical_json


def cache_key(campaign_name: str, params: Dict[str, Any],
              code_version: str, ruleset: str = "") -> str:
    """Content hash identifying one campaign point.

    ``ruleset`` is the static-verifier ruleset version (see
    :func:`repro.verify.ruleset_version`): a point that passed
    verification under one ruleset must re-verify — and therefore
    re-run — when rules are added, removed, or reclassified.
    """
    identity: Dict[str, Any] = {
        "campaign": campaign_name,
        "params": params,
        "code": code_version,
    }
    if ruleset:
        identity["ruleset"] = ruleset
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` run records."""

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return RunRecord.from_dict(data)

    def put(self, key: str, record: RunRecord) -> None:
        if record.status != "ok":
            return
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(record.to_dict()))
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete all cached records; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
