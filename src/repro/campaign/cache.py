"""Content-addressed on-disk result cache.

Each campaign point is keyed by the SHA-256 of its canonical identity —
campaign name, full parameter dict (seed included) and the code-version
hash of the model under test.  A key maps to one JSON file holding the
finished :class:`~repro.campaign.records.RunRecord`; re-running a
campaign therefore only executes points whose parameters or code have
changed.  Failed runs are *not* cached, so transient failures retry on
the next invocation.

The store is safe for concurrent writers *and* readers sharing one
directory (worker fan-out, parallel campaign invocations, the campaign
service's fleet-wide shared store):

* records are staged in a ``tempfile.mkstemp`` file — unique per
  writer, even across threads of one process — and ``os.replace``-d
  into place, so a reader never opens a half-written entry;
* readers tolerate every partial-visibility artifact of that protocol
  (entry missing, entry appearing mid-scan, malformed bytes from a
  foreign writer) by treating it as a cache miss;
* an optional ``fsync`` knob makes publication durable before the
  rename, for stores that must survive power loss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .records import RunRecord, canonical_json


def cache_key(campaign_name: str, params: Dict[str, Any],
              code_version: str, ruleset: str = "") -> str:
    """Content hash identifying one campaign point.

    ``ruleset`` is the static-verifier ruleset version (see
    :func:`repro.verify.ruleset_version`): a point that passed
    verification under one ruleset must re-verify — and therefore
    re-run — when rules are added, removed, or reclassified.
    """
    identity: Dict[str, Any] = {
        "campaign": campaign_name,
        "params": params,
        "code": code_version,
    }
    if ruleset:
        identity["ruleset"] = ruleset
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


class ResultCache:
    """Directory of ``<key>.json`` run records."""

    def __init__(self, directory: Union[str, Path],
                 fsync: bool = False):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[RunRecord]:
        record = self._read(self._path(key))
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    @staticmethod
    def _read(path: Path) -> Optional[RunRecord]:
        """Load one entry, treating every concurrent-visibility artifact
        (missing file, truncated/garbled JSON, wrong shape) as absent."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            return RunRecord.from_dict(data)
        except (FileNotFoundError, json.JSONDecodeError):
            return None
        except (KeyError, TypeError, ValueError, AttributeError):
            return None

    def put(self, key: str, record: RunRecord) -> None:
        if record.status != "ok":
            return
        self._write(self._path(key), canonical_json(record.to_dict()))

    def _write(self, path: Path, payload: str) -> None:
        """Atomically publish ``payload`` at ``path`` via a unique temp
        file + ``os.replace`` — last writer wins, readers see either
        the old entry, the new entry, or (for first publication)
        nothing, never a torn file."""
        fd, tmp = tempfile.mkstemp(dir=str(self.directory),
                                   prefix=f".{path.stem[:24]}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete all cached records; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
