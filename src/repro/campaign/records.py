"""Structured run records and campaign result aggregation.

Every campaign run — executed, retried, failed, or served from the
result cache — produces one :class:`RunRecord`.  Records are plain
JSON-serializable data so they can be written as JSONL, diffed between
machines, and hashed for determinism checks: the *deterministic view*
of a record excludes volatile fields (wall time, cache provenance) so a
serial run and a multi-process run of the same campaign compare
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

#: Record schema version.  v1: the original field set.  v2 (additive):
#: ``schema`` itself plus ``metrics_telemetry`` — the engine-health
#: snapshot harvested via ``Simulator.metrics_snapshot`` after each
#: build-style run.  v1 records (no ``schema`` key) still load; new
#: fields default to v1 semantics (``metrics_telemetry=None``).
SCHEMA_VERSION = 2

#: Record fields that legitimately differ between executions of the
#: same campaign point (timing, cache provenance, engine telemetry —
#: which embeds wall-clock seconds — and the schema tag itself, since
#: cached v1 records may mix with freshly executed v2 ones) and are
#: therefore excluded from determinism fingerprints.
VOLATILE_FIELDS = ("wall_time", "cached", "metrics_telemetry", "schema")


def canonical_json(value: Any) -> str:
    """Canonical (sorted-key, minimal-separator) JSON encoding.

    The cache key and the determinism fingerprint both rely on this
    being stable across processes and Python invocations.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def _jsonify(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {value!r}")


@dataclass
class RunRecord:
    """One campaign point: its parameters, seed, status and metrics."""

    index: int
    params: Dict[str, Any]
    seed: Optional[int]
    status: str = "ok"            # "ok" | "failed"
    metrics: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: "retryable" | "permanent" for failed runs, None otherwise.
    failure_kind: Optional[str] = None
    wall_time: float = 0.0
    attempts: int = 1
    cached: bool = False
    #: v2 (additive): flat engine-health snapshot from
    #: ``Simulator.metrics_snapshot`` (solver steps, tier escalations,
    #: TDF activations, per-MoC wall time); None for run=-style
    #: campaigns and records loaded from v1 files.
    metrics_telemetry: Optional[Dict[str, Any]] = None
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "index": self.index,
            "params": self.params,
            "seed": self.seed,
            "status": self.status,
            "metrics": self.metrics,
            "error": self.error,
            "failure_kind": self.failure_kind,
            "wall_time": self.wall_time,
            "attempts": self.attempts,
            "cached": self.cached,
            "metrics_telemetry": self.metrics_telemetry,
        }

    def deterministic_dict(self) -> Dict[str, Any]:
        """The record minus volatile fields (see :data:`VOLATILE_FIELDS`)."""
        data = self.to_dict()
        for key in VOLATILE_FIELDS:
            data.pop(key)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            index=int(data["index"]),
            params=dict(data["params"]),
            seed=data.get("seed"),
            status=data.get("status", "ok"),
            metrics=dict(data.get("metrics") or {}),
            error=data.get("error"),
            failure_kind=data.get("failure_kind"),
            wall_time=float(data.get("wall_time", 0.0)),
            attempts=int(data.get("attempts", 1)),
            cached=bool(data.get("cached", False)),
            metrics_telemetry=(
                dict(data["metrics_telemetry"])
                if data.get("metrics_telemetry") is not None else None),
            schema=int(data.get("schema", 1)),
        )


class CampaignResults:
    """Aggregation API over a campaign's run records.

    Indexable and iterable like a sequence (ordered by run index);
    reductions operate over the metrics of successful runs only.
    """

    def __init__(self, records: Iterable[RunRecord]):
        self.records: List[RunRecord] = sorted(records,
                                               key=lambda r: r.index)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, item):
        return self.records[item]

    # -- selection ----------------------------------------------------------

    def ok(self) -> "CampaignResults":
        return CampaignResults(r for r in self.records
                               if r.status == "ok")

    def failed(self) -> "CampaignResults":
        return CampaignResults(r for r in self.records
                               if r.status == "failed")

    def where(self, **param_filters: Any) -> "CampaignResults":
        """Records whose params match every ``key=value`` filter."""
        return CampaignResults(
            r for r in self.records
            if all(r.params.get(k) == v
                   for k, v in param_filters.items())
        )

    # -- reductions ---------------------------------------------------------

    def metric(self, name: str) -> np.ndarray:
        """Array of metric ``name`` over successful runs."""
        return np.array([r.metrics[name] for r in self.records
                         if r.status == "ok" and name in r.metrics],
                        dtype=float)

    def telemetry_metric(self, name: str) -> np.ndarray:
        """Array of engine-telemetry metric ``name`` (e.g.
        ``"solver.steps"``) over successful runs carrying a v2
        ``metrics_telemetry`` snapshot."""
        return np.array(
            [r.metrics_telemetry[name] for r in self.records
             if r.status == "ok" and r.metrics_telemetry is not None
             and name in r.metrics_telemetry],
            dtype=float)

    def mean(self, name: str) -> float:
        return float(np.mean(self.metric(name)))

    def std(self, name: str) -> float:
        return float(np.std(self.metric(name)))

    def percentile(self, name: str, q: float) -> float:
        return float(np.percentile(self.metric(name), q))

    def min(self, name: str) -> float:
        return float(np.min(self.metric(name)))

    def max(self, name: str) -> float:
        return float(np.max(self.metric(name)))

    def yield_fraction(self, predicate: Callable[[Dict[str, Any]], bool]
                       ) -> float:
        """Fraction of successful runs whose metrics satisfy
        ``predicate`` — the Monte Carlo *yield* of the campaign."""
        ok = [r for r in self.records if r.status == "ok"]
        if not ok:
            return 0.0
        passing = sum(1 for r in ok if predicate(r.metrics))
        return passing / len(ok)

    # -- tabulation ---------------------------------------------------------

    def param_names(self) -> List[str]:
        names: List[str] = []
        for record in self.records:
            for key in record.params:
                if key not in names:
                    names.append(key)
        return names

    def metric_names(self) -> List[str]:
        names: List[str] = []
        for record in self.records:
            for key in record.metrics:
                if key not in names:
                    names.append(key)
        return names

    def to_table(self, columns: Optional[Sequence[str]] = None
                 ) -> tuple:
        """``(headers, rows)`` over all records.

        ``columns`` restricts/reorders the param+metric columns; the
        leading ``run`` / ``status`` columns are always present.
        """
        if columns is None:
            params = self.param_names()
            columns = params + [m for m in self.metric_names()
                                if m not in params]
        headers = ["run", "status"] + list(columns)
        rows = []
        for record in self.records:
            row: List[Any] = [record.index, record.status]
            for name in columns:
                if name in record.params:
                    row.append(record.params[name])
                else:
                    row.append(record.metrics.get(name, ""))
            rows.append(row)
        return headers, rows

    def format_table(self, columns: Optional[Sequence[str]] = None,
                     float_digits: int = 4) -> str:
        headers, rows = self.to_table(columns)

        def fmt(cell: Any) -> str:
            if isinstance(cell, float):
                return f"{cell:.{float_digits}g}"
            return str(cell)

        text_rows = [[fmt(c) for c in row] for row in rows]
        widths = [max(len(h), *(len(r[i]) for r in text_rows))
                  if text_rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for row in text_rows:
            lines.append("  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        return "\n".join(lines)

    # -- determinism & persistence ------------------------------------------

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic view of every record.

        Two executions of the same campaign (any worker count, any
        cache state) must produce the same fingerprint.
        """
        digest = hashlib.sha256()
        for record in self.records:
            digest.update(
                canonical_json(record.deterministic_dict()).encode()
            )
        return digest.hexdigest()

    def write_jsonl(self, path) -> None:
        with JsonlAppender(path, truncate=True) as appender:
            for record in self.records:
                appender.append(record.to_dict())

    @classmethod
    def read_jsonl(cls, path) -> "CampaignResults":
        records = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(RunRecord.from_dict(json.loads(line)))
        return cls(records)

    def summary(self) -> Dict[str, Any]:
        ok = sum(1 for r in self.records if r.status == "ok")
        return {
            "runs": len(self.records),
            "ok": ok,
            "failed": len(self.records) - ok,
            "cached": sum(1 for r in self.records if r.cached),
            "wall_time": float(sum(r.wall_time for r in self.records)),
        }


class JsonlAppender:
    """Torn-line-free JSONL writer for live-streamed records.

    A streamed campaign (the service's ``/stream`` endpoint, a ``tail
    -f`` on a records file) reads the file *while* it grows, so every
    record must become visible as one complete line.  Each append
    serializes the record and hands the entire ``line + "\\n"`` to a
    single ``os.write`` on an ``O_APPEND`` descriptor — on POSIX the
    kernel applies the append atomically, so concurrent appenders
    interleave whole lines and a reader never observes a prefix of one.

    ``fsync=True`` additionally flushes each line to stable storage
    before returning (durability knob; off by default — atomicity does
    not require it).
    """

    def __init__(self, path, truncate: bool = False,
                 fsync: bool = False):
        self.path = path
        self.fsync = fsync
        flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
        if truncate:
            flags |= os.O_TRUNC
        self._fd: Optional[int] = os.open(str(path), flags, 0o644)

    def append(self, record: Any) -> None:
        """Append one record (a :class:`RunRecord` or a JSON-ready
        dict) as a single atomic line."""
        if self._fd is None:
            raise ValueError("appender is closed")
        if isinstance(record, RunRecord):
            record = record.to_dict()
        line = (canonical_json(record) + "\n").encode("utf-8")
        os.write(self._fd, line)
        if self.fsync:
            os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
