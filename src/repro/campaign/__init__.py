"""`repro.campaign` — parallel simulation campaigns.

The execution layer the paper's methodology implies but SystemC-AMS
itself never shipped: once a virtual prototype exists (the ADSL
front-end of Figure 1, Bonnerud's pipelined ADC), its *verification* is
a campaign — Monte Carlo over component mismatch, corner sweeps over
process/operating conditions, grid sweeps over design parameters —
thousands of independent simulator runs that must be seeded
reproducibly, fanned out over processes, cached across invocations, and
aggregated into yield/SNR statistics.

Building blocks:

* :class:`Sweep` / :class:`Corners` / :class:`MonteCarlo` /
  :class:`FixedPoints` — declarative parameter spaces, composable with
  ``*`` (product) and ``+`` (concat);
* :class:`Campaign` — a space plus the model under test (a
  ``run(params) -> metrics`` function or a ``build(params) ->
  Simulator`` factory) and a root seed;
* :class:`CampaignRunner` / :func:`run_campaign` — chunked
  ``ProcessPoolExecutor`` execution with deterministic per-run
  ``SeedSequence.spawn`` seeding, per-run timeouts, retry-once, and a
  content-addressed on-disk result cache;
* :class:`CampaignResults` — JSONL persistence plus the aggregation
  API (``to_table``, mean/percentile reductions, yield fractions).

Command line: ``python -m repro.campaign spec.py --workers 4``.
"""

from .cache import ResultCache, cache_key
from .loader import SpecError, load_spec, resolve_spec_ref, select_campaign
from .records import CampaignResults, JsonlAppender, RunRecord, canonical_json
from .runner import CampaignRunner, RunTimeout, plan_records, run_campaign
from .spec import (
    Campaign,
    Concat,
    Corners,
    FixedPoints,
    MonteCarlo,
    ParamSpace,
    Product,
    Sweep,
    code_version_for,
)

__all__ = [
    "Campaign",
    "CampaignResults",
    "CampaignRunner",
    "Concat",
    "Corners",
    "FixedPoints",
    "JsonlAppender",
    "MonteCarlo",
    "ParamSpace",
    "Product",
    "ResultCache",
    "RunRecord",
    "RunTimeout",
    "SpecError",
    "Sweep",
    "cache_key",
    "canonical_json",
    "code_version_for",
    "load_spec",
    "plan_records",
    "resolve_spec_ref",
    "run_campaign",
    "select_campaign",
]
