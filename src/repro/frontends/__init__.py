"""`repro.frontends` — description layers (views).

The two interface layers the paper requires: a SPICE-flavoured netlist
parser common to all continuous-time MoCs, and an equation interface for
behavioural DAE formulation ("true simultaneous statements").
"""

from .equations import EquationSystem, Variable
from .netlist import NetlistError, parse_netlist, parse_value

__all__ = [
    "EquationSystem", "NetlistError", "Variable", "parse_netlist",
    "parse_value",
]
