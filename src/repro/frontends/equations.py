"""The equation interface: behavioural DAE formulation by name.

The paper requires "an equation interface that should allow a user to
formulate behavioral models or functional specifications in a more
natural way as a set of DAEs" — including Phase 2's "formulation of
implicit equations, e.g. true simultaneous statements".

:class:`EquationSystem` lets users declare named variables and state
residual equations over them; it compiles to a
:class:`~repro.ct.nonlinear.FunctionSystem` usable with every solver::

    es = EquationSystem()
    v = es.variable("v", initial=0.0)
    i = es.variable("i")
    es.differential(v, lambda x, t: x[i] / C)          # dv/dt = i/C
    es.equation(lambda x, t: x[v] + R * x[i] - vin(t)) # KVL, implicit

Residual callbacks receive the raw state vector indexable by the
variable handles (plain integers) and the time.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.errors import ElaborationError
from ..ct.nonlinear import FunctionSystem

Residual = Callable[[np.ndarray, float], float]


class Variable(int):
    """An unknown: an int index with a name attached."""

    def __new__(cls, index: int, name: str):
        obj = super().__new__(cls, index)
        obj.name = name
        return obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({int(self)}, {self.name!r})"


class EquationSystem:
    """Named-variable DAE builder.

    Each variable needs exactly one defining statement: either a
    *differential* equation ``d(var)/dt = rhs(x, t)`` or its
    participation being pinned down by the overall count of *implicit*
    equations — the system needs exactly as many equations as variables.
    """

    def __init__(self, name: str = "equations"):
        self.name = name
        self._variables: list[Variable] = []
        self._initials: list[float] = []
        #: differential statements: (variable, rhs)
        self._differentials: list[tuple[Variable, Residual]] = []
        #: implicit residuals F(x, t) = 0
        self._equations: list[Residual] = []

    def variable(self, name: str, initial: float = 0.0) -> Variable:
        if any(v.name == name for v in self._variables):
            raise ElaborationError(f"duplicate variable name {name!r}")
        var = Variable(len(self._variables), name)
        self._variables.append(var)
        self._initials.append(initial)
        return var

    def differential(self, var: Variable, rhs: Residual) -> None:
        """Declare ``d(var)/dt = rhs(x, t)``."""
        if any(v is var or int(v) == int(var)
               for v, _ in self._differentials):
            raise ElaborationError(
                f"variable {var.name!r} already has a differential equation"
            )
        self._differentials.append((var, rhs))

    def equation(self, residual: Residual) -> None:
        """Declare an implicit equation ``residual(x, t) == 0``."""
        self._equations.append(residual)

    # -- compilation ------------------------------------------------------------

    def build(self) -> FunctionSystem:
        """Compile to a charge-form nonlinear system.

        Ordering: one row per differential statement (charge = the
        variable, static = -rhs), then one row per implicit equation
        (pure static).  Equation count must equal variable count.
        """
        n = len(self._variables)
        total = len(self._differentials) + len(self._equations)
        if total != n:
            raise ElaborationError(
                f"system {self.name!r} has {n} variables but {total} "
                "equations; it must be square"
            )
        diff_vars = [int(v) for v, _ in self._differentials]
        diff_rhs = [rhs for _, rhs in self._differentials]
        implicit = list(self._equations)

        def charge(x: np.ndarray) -> np.ndarray:
            q = np.zeros(n)
            for row, var in enumerate(diff_vars):
                q[row] = x[var]
            return q

        def charge_jacobian(x: np.ndarray) -> np.ndarray:
            c = np.zeros((n, n))
            for row, var in enumerate(diff_vars):
                c[row, var] = 1.0
            return c

        def static(x: np.ndarray, t: float) -> np.ndarray:
            f = np.zeros(n)
            for row, rhs in enumerate(diff_rhs):
                f[row] = -float(rhs(x, t))
            base = len(diff_rhs)
            for k, residual in enumerate(implicit):
                f[base + k] = float(residual(x, t))
            return f

        return FunctionSystem(
            n,
            static=static,
            charge=charge,
            charge_jacobian=charge_jacobian,
            x0=np.asarray(self._initials, dtype=float),
        )

    @property
    def variable_names(self) -> list[str]:
        return [v.name for v in self._variables]
