"""SPICE-flavoured netlist parser.

The paper requires "a netlist interface that should be common to all
underlying continuous-time MoCs".  This parser builds a
:class:`~repro.nonlin.network.NonlinearNetwork` (a superset of the
linear network — a netlist with only linear elements can still be
assembled linearly) from text like::

    * RC lowpass with a diode clamp
    V1 in 0 SIN(0 5 1k)
    R1 in out 1k
    C1 out 0 1u
    D1 out 0 IS=1e-14 N=1
    .end

Supported cards: R, C, L, V, I (DC / SIN / PULSE), E (VCVS), G (VCCS),
H (CCVS), F (CCCS), T (ideal transformer), S (switch), D (diode),
M (NMOS).  Values accept SPICE suffixes (f p n u m k meg g t).
"""

from __future__ import annotations

import re
from typing import Callable, Optional

import numpy as np

from ..core.errors import ElaborationError
from ..eln.components import (
    Capacitor,
    Cccs,
    Ccvs,
    IdealTransformer,
    Inductor,
    Isource,
    Resistor,
    Switch,
    Vccs,
    Vcvs,
    Vsource,
)
from ..nonlin.devices import Diode, NMos
from ..nonlin.network import NonlinearNetwork


class NetlistError(ElaborationError):
    """Raised on malformed netlist input, with the offending line."""

    def __init__(self, line_number: int, line: str, reason: str):
        super().__init__(f"netlist line {line_number}: {reason}: {line!r}")
        self.line_number = line_number


_SUFFIXES = [
    ("meg", 1e6), ("t", 1e12), ("g", 1e9), ("k", 1e3), ("m", 1e-3),
    ("u", 1e-6), ("n", 1e-9), ("p", 1e-12), ("f", 1e-15),
]


def parse_value(token: str) -> float:
    """Parse a SPICE-style number: ``4.7k``, ``100n``, ``1meg``, ``2.5``."""
    text = token.strip().lower()
    for suffix, scale in _SUFFIXES:
        if text.endswith(suffix):
            return float(text[: -len(suffix)]) * scale
    return float(text)


def _parse_params(tokens: list[str]) -> dict[str, float]:
    params = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        params[key.strip().lower()] = parse_value(value)
    return params


_SIN_RE = re.compile(r"sin\s*\(([^)]*)\)", re.IGNORECASE)
_PULSE_RE = re.compile(r"pulse\s*\(([^)]*)\)", re.IGNORECASE)


def _parse_source_spec(spec: str) -> Callable[[float], float]:
    """DC value, SIN(offset ampl freq [phase_deg]), or
    PULSE(low high delay period width)."""
    text = spec.strip()
    match = _SIN_RE.match(text)
    if match:
        args = [parse_value(v) for v in match.group(1).split()]
        if len(args) < 3:
            raise ValueError("SIN needs (offset amplitude frequency)")
        offset, amplitude, frequency = args[:3]
        phase = np.radians(args[3]) if len(args) > 3 else 0.0
        return lambda t: offset + amplitude * np.sin(
            2 * np.pi * frequency * t + phase
        )
    match = _PULSE_RE.match(text)
    if match:
        args = [parse_value(v) for v in match.group(1).split()]
        if len(args) < 5:
            raise ValueError("PULSE needs (low high delay period width)")
        low, high, delay, period, width = args[:5]

        def pulse(t: float) -> float:
            if t < delay:
                return low
            phase = (t - delay) % period
            return high if phase < width else low

        return pulse
    upper = text.upper()
    if upper.startswith("DC"):
        text = text[2:].strip()
    value = parse_value(text)
    return lambda t: value


def parse_netlist(text: str, name: str = "netlist") -> NonlinearNetwork:
    """Parse netlist ``text`` into a network."""
    network = NonlinearNetwork(name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].strip()
        if not line or line.startswith("*"):
            continue
        if line.startswith("."):
            if line.lower().startswith(".end"):
                break
            continue  # other directives are analysis hints; ignored here
        tokens = line.split()
        card = tokens[0]
        kind = card[0].upper()
        try:
            _dispatch(network, kind, card, tokens[1:], line)
        except NetlistError:
            raise
        except (ValueError, IndexError, ElaborationError) as exc:
            raise NetlistError(line_number, raw, str(exc)) from exc
    if not network.components and not network.devices:
        raise ElaborationError(f"netlist {name!r} contains no components")
    return network


def _dispatch(network: NonlinearNetwork, kind: str, name: str,
              args: list[str], line: str) -> None:
    if kind == "R":
        network.add(Resistor(name, args[0], args[1], parse_value(args[2])))
    elif kind == "C":
        network.add(Capacitor(name, args[0], args[1], parse_value(args[2])))
    elif kind == "L":
        network.add(Inductor(name, args[0], args[1], parse_value(args[2])))
    elif kind == "V":
        waveform = _parse_source_spec(" ".join(args[2:]))
        network.add(Vsource(name, args[0], args[1], waveform))
    elif kind == "I":
        waveform = _parse_source_spec(" ".join(args[2:]))
        network.add(Isource(name, args[0], args[1], waveform))
    elif kind == "E":
        network.add(Vcvs(name, args[0], args[1], args[2], args[3],
                         parse_value(args[4])))
    elif kind == "G":
        network.add(Vccs(name, args[0], args[1], args[2], args[3],
                         parse_value(args[4])))
    elif kind == "H":
        network.add(Ccvs(name, args[0], args[1], args[2],
                         parse_value(args[3])))
    elif kind == "F":
        network.add(Cccs(name, args[0], args[1], args[2],
                         parse_value(args[3])))
    elif kind == "T":
        network.add(IdealTransformer(name, args[0], args[1], args[2],
                                     args[3], parse_value(args[4])))
    elif kind == "S":
        state = args[2].upper()
        if state not in ("ON", "OFF"):
            raise ValueError(f"switch state must be ON or OFF, got {state}")
        params = _parse_params(args[3:])
        network.add(Switch(name, args[0], args[1], closed=state == "ON",
                           r_on=params.get("ron", 1e-3),
                           r_off=params.get("roff", 1e9)))
    elif kind == "D":
        params = _parse_params(args[2:])
        network.add_device(Diode(
            name, args[0], args[1],
            i_sat=params.get("is", 1e-14),
            emission=params.get("n", 1.0),
            junction_cap=params.get("cj", 0.0),
            transit_time=params.get("tt", 0.0),
        ))
    elif kind == "M":
        params = _parse_params(args[3:])
        network.add_device(NMos(
            name, args[0], args[1], args[2],
            k_prime=params.get("kp", 2e-3),
            vth=params.get("vth", 0.7),
            lam=params.get("lambda", 0.0),
        ))
    else:
        raise ValueError(f"unknown component kind {kind!r}")
