"""Convergence homotopy: the SPICE recovery ladder for diverged Newton.

When plain (damped) Newton fails on a DC operating point or an implicit
integration step, circuit simulators do not give up — they solve a
*continuation* of easier problems whose solutions track toward the hard
one:

* **gmin stepping** (:func:`gmin_stepping`) — add a shunt conductance
  ``g`` to every unknown (making the Jacobian diagonally dominant) and
  relax ``g`` geometrically toward zero, each rung's solution seeding
  the next.
* **source stepping** (:func:`source_stepping`) — ramp the independent
  sources from zero to full strength.  Systems exposing a
  ``source_scale`` attribute (e.g.
  :class:`~repro.nonlin.network.MnaNonlinearSystem`) get true source
  scaling; any other system falls back to the generic *residual
  embedding* ``F_a(x) = f(x) - (1 - a) f(x_ref)``, which is exact at
  ``a = 0`` (``x_ref`` solves it by construction) and recovers the
  original problem at ``a = 1``.

Both ladders are adaptive: a failed rung is retried with a smaller
continuation step until progress resumes or the step underflows.
:func:`continuation_solve` chains plain Newton → gmin → source stepping
and reports which method finally converged.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..core.errors import ConvergenceError
from ..ct.nonlinear import NonlinearSystem, newton
from ..observe import current as _current_telemetry


def _observe_rungs(method: str, rungs: int) -> None:
    """Report a completed ladder through the ambient telemetry hub.

    The ladders are free functions with no path to a simulator, so they
    use :func:`repro.observe.current` (installed by ``Simulator.run``/
    ``elaborate``); a missing hub costs one ``is None`` test per solve.
    """
    telemetry = _current_telemetry()
    if telemetry is not None:
        telemetry.metrics.histogram(
            "homotopy.rungs", method=method).observe(rungs)


def gmin_stepping(
    system: NonlinearSystem,
    t: float = 0.0,
    x0: Optional[np.ndarray] = None,
    gmin_start: float = 1e-2,
    gmin_min: float = 1e-12,
    reduction: float = 10.0,
    max_rungs: int = 64,
) -> np.ndarray:
    """Solve ``f(x, t) = 0`` by adaptive gmin continuation.

    Starts at shunt conductance ``gmin_start``, divides by ``reduction``
    per rung; when a rung fails the reduction factor is square-rooted
    (denser ladder) and the rung retried from the last good solution.
    Raises :class:`~repro.core.errors.ConvergenceError` if the ladder
    stalls.
    """
    x = np.asarray(system.initial_guess() if x0 is None else x0,
                   dtype=float)

    def solve_at(g: float, start: np.ndarray) -> np.ndarray:
        eye = np.eye(system.n)
        result, _ = newton(
            lambda v: system.static(v, t) + g * v,
            lambda v: system.static_jacobian(v, t) + g * eye,
            start,
        )
        return result

    g = gmin_start
    x = solve_at(g, x)      # the easiest rung must succeed outright
    factor = reduction
    rungs = 0
    while g > gmin_min:
        g_next = g / factor
        try:
            x = solve_at(g_next, x)
            g = g_next
        except ConvergenceError:
            factor = np.sqrt(factor)
            if factor < 1.0 + 1e-6:
                raise ConvergenceError(
                    f"gmin stepping stalled at g={g:.3e} "
                    "(continuation step underflow)"
                )
        rungs += 1
        if rungs > max_rungs:
            raise ConvergenceError(
                f"gmin stepping exceeded {max_rungs} rungs at g={g:.3e}"
            )
    _observe_rungs("gmin", rungs)
    return solve_at(0.0, x)


def embedding_solve(
    residual: Callable[[np.ndarray], np.ndarray],
    jacobian: Callable[[np.ndarray], np.ndarray],
    x_ref: np.ndarray,
    alpha_start: float = 1e-12,
    growth: float = 10.0,
    max_rungs: int = 256,
    newton_kwargs: Optional[dict] = None,
) -> np.ndarray:
    """Generic residual-embedding continuation.

    Solves ``F_a(x) = residual(x) - (1 - a) * residual(x_ref) = 0``
    along an adaptive ramp ``a: 0 -> 1``.  At ``a = 0`` the reference
    point is an exact solution; at ``a = 1`` the original residual is
    recovered.  A failed rung shrinks the ramp step (square-rooting the
    growth factor); the final solve at ``a = 1`` uses the exact residual
    so no embedding bias survives.
    """
    kwargs = newton_kwargs or {}
    x = np.asarray(x_ref, dtype=float).copy()
    f_ref = np.asarray(residual(x_ref), dtype=float)

    def solve_at(a: float, start: np.ndarray) -> np.ndarray:
        offset = (1.0 - a) * f_ref
        result, _ = newton(
            lambda v: np.asarray(residual(v), dtype=float) - offset,
            jacobian, start, **kwargs,
        )
        return result

    alpha = alpha_start
    factor = growth
    x = solve_at(alpha, x)
    rungs = 0
    while alpha < 1.0:
        a_next = min(1.0, alpha * factor)
        try:
            x = solve_at(a_next, x)
            alpha = a_next
        except ConvergenceError:
            factor = np.sqrt(factor)
            if factor < 1.0 + 1e-9:
                raise ConvergenceError(
                    f"residual embedding stalled at alpha={alpha:.3e}"
                )
        rungs += 1
        if rungs > max_rungs:
            raise ConvergenceError(
                f"residual embedding exceeded {max_rungs} rungs at "
                f"alpha={alpha:.3e}"
            )
    _observe_rungs("embedding", rungs)
    return solve_at(1.0, x)


def source_stepping(
    system: NonlinearSystem,
    t: float = 0.0,
    x0: Optional[np.ndarray] = None,
    alpha_start: float = 1e-12,
    growth: float = 10.0,
    max_rungs: int = 256,
) -> np.ndarray:
    """Solve ``f(x, t) = 0`` by ramping the sources from zero.

    If the system exposes a ``source_scale`` attribute (the protocol
    implemented by :class:`~repro.nonlin.network.MnaNonlinearSystem`),
    the independent sources are genuinely scaled by the continuation
    parameter.  Otherwise the generic residual embedding of
    :func:`embedding_solve` is used with the initial guess as the
    reference point.
    """
    guess = np.asarray(system.initial_guess() if x0 is None else x0,
                       dtype=float)
    if not hasattr(system, "source_scale"):
        return embedding_solve(
            lambda v: system.static(v, t),
            lambda v: system.static_jacobian(v, t),
            guess, alpha_start=alpha_start, growth=growth,
            max_rungs=max_rungs,
        )

    def solve_at(alpha: float, start: np.ndarray) -> np.ndarray:
        previous = system.source_scale
        system.source_scale = alpha
        try:
            result, _ = newton(
                lambda v: system.static(v, t),
                lambda v: system.static_jacobian(v, t),
                start,
            )
        finally:
            system.source_scale = previous
        return result

    x = solve_at(0.0, guess)    # sources off: usually the trivial point
    alpha = alpha_start
    factor = growth
    rungs = 0
    while alpha < 1.0:
        a_next = min(1.0, alpha * factor)
        try:
            x = solve_at(a_next, x)
            alpha = a_next
        except ConvergenceError:
            factor = np.sqrt(factor)
            if factor < 1.0 + 1e-9:
                raise ConvergenceError(
                    f"source stepping stalled at alpha={alpha:.3e}"
                )
        rungs += 1
        if rungs > max_rungs:
            raise ConvergenceError(
                f"source stepping exceeded {max_rungs} rungs at "
                f"alpha={alpha:.3e}"
            )
    _observe_rungs("source", rungs)
    return solve_at(1.0, x)


def continuation_solve(
    system: NonlinearSystem,
    t: float = 0.0,
    x0: Optional[np.ndarray] = None,
    use_gmin: bool = True,
    use_source: bool = True,
) -> Tuple[np.ndarray, str]:
    """The full recovery ladder: Newton → gmin stepping → source stepping.

    Returns ``(solution, method)`` with ``method`` one of ``"newton"``,
    ``"gmin"`` or ``"source"``.  On total failure the raised
    :class:`~repro.core.errors.ConvergenceError` lists every ladder
    stage that was attempted.
    """
    guess = np.asarray(system.initial_guess() if x0 is None else x0,
                       dtype=float)
    failures = []

    def converged(x: np.ndarray, method: str):
        telemetry = _current_telemetry()
        if telemetry is not None:
            telemetry.metrics.counter(
                "homotopy.solves", method=method).inc()
            if method != "newton":
                telemetry.tracer.instant(
                    "homotopy.recovered", track="resilience",
                    method=method, t=t)
        return x, method

    try:
        x, _ = newton(lambda v: system.static(v, t),
                      lambda v: system.static_jacobian(v, t), guess)
        return converged(x, "newton")
    except ConvergenceError as exc:
        failures.append(("newton", exc))
    if use_gmin:
        try:
            return converged(gmin_stepping(system, t, guess), "gmin")
        except ConvergenceError as exc:
            failures.append(("gmin", exc))
    if use_source:
        try:
            return converged(source_stepping(system, t, guess), "source")
        except ConvergenceError as exc:
            failures.append(("source", exc))
    chain = "; ".join(f"{name}: {exc}" for name, exc in failures)
    last = failures[-1][1]
    error = ConvergenceError(
        f"continuation ladder exhausted ({chain})",
        iterations=getattr(last, "iterations", None),
        residual_norm=getattr(last, "residual_norm", None),
        time_point=t,
    )
    error.ladder = [name for name, _exc in failures]
    raise error
