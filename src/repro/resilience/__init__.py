"""`repro.resilience` — fault tolerance for the simulation stack.

The paper's Section 3 objectives ask for solvers that stay *robust*
across stiff, nonlinear, and mixed-signal workloads; at campaign scale
(thousands of runs, see :mod:`repro.campaign`) the limiting factor is
failed and diverged runs, not raw speed.  This subsystem converts
previously-fatal numerical failures into recovered runs or actionable
artifacts:

* :class:`ResilientTransientSolver` — per-interval fallback chain
  (primary → halved step → stiff BDF) with observable tier usage;
* :func:`continuation_solve` / :func:`gmin_stepping` /
  :func:`source_stepping` — the SPICE convergence-homotopy ladder;
* :class:`HealthMonitor` / :class:`DiagnosticReport` — numerical health
  guards and structured postmortems attached to solver errors;
* :class:`CheckpointManager` / :class:`Checkpoint` — pickleable
  snapshots enabling checkpoint/restart of long simulations.
"""

from .checkpoint import Checkpoint, CheckpointManager
from .fallback import ResilientTransientSolver
from .health import (
    DiagnosticReport,
    HealthError,
    HealthMonitor,
    attach_diagnostic,
    diagnostic_of,
)
from .homotopy import (
    continuation_solve,
    embedding_solve,
    gmin_stepping,
    source_stepping,
)

__all__ = [
    "Checkpoint", "CheckpointManager", "DiagnosticReport", "HealthError",
    "HealthMonitor", "ResilientTransientSolver", "attach_diagnostic",
    "continuation_solve", "diagnostic_of", "embedding_solve",
    "gmin_stepping", "source_stepping",
]
