"""Checkpoint/restart: periodic pickleable snapshots of simulation state.

Long co-simulations (the virtual-prototyping workloads of the related
RISC-V/SystemC-AMS work) must survive solver hiccups and process death
without losing hours of progress.  A checkpoint is a plain ``dict``
payload assembled by :meth:`repro.core.Simulator.capture_checkpoint`:
kernel clock, per-cluster dataflow state (period counters, signal
buffers, activation indices) and the ``state_dict`` of every
continuous-time solver.  Restoring it into a *freshly built* simulator
(same factory, fresh process) resumes the run bit-identically — the
fault-injection suite asserts trajectory equality against an
uninterrupted run.

:class:`CheckpointManager` stores snapshots either in memory (the
default — cheap insurance inside one process) or in a directory of
pickle files (surviving a killed process), pruning all but the newest
``keep_last``.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional


@dataclass
class Checkpoint:
    """One snapshot: the state payload plus bookkeeping."""

    payload: Dict[str, Any]
    time_seconds: float
    index: int
    path: Optional[str] = None

    def to_bytes(self) -> bytes:
        return pickle.dumps({
            "payload": self.payload,
            "time_seconds": self.time_seconds,
            "index": self.index,
        }, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        raw = pickle.loads(data)
        return cls(payload=raw["payload"],
                   time_seconds=float(raw["time_seconds"]),
                   index=int(raw["index"]))


class CheckpointManager:
    """Stores, prunes, and reloads simulation checkpoints.

    Parameters
    ----------
    directory:
        Where checkpoint files go; ``None`` keeps snapshots in memory
        only (they die with the process, but still enable in-process
        restarts and postmortem artifacts).
    keep_last:
        How many snapshots to retain; older ones are pruned.
    prefix:
        File-name prefix for on-disk checkpoints.
    """

    def __init__(self, directory=None, keep_last: int = 2,
                 prefix: str = "checkpoint"):
        self.directory = Path(directory) if directory is not None else None
        self.keep_last = max(1, int(keep_last))
        self.prefix = prefix
        self._memory: List[Checkpoint] = []
        self._index = 0
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- saving -------------------------------------------------------------

    def save(self, payload: Dict[str, Any],
             time_seconds: float) -> Checkpoint:
        self._index += 1
        checkpoint = Checkpoint(payload=payload,
                                time_seconds=float(time_seconds),
                                index=self._index)
        if self.directory is not None:
            path = self.directory / (
                f"{self.prefix}_{self._index:06d}.pkl"
            )
            with open(path, "wb") as handle:
                handle.write(checkpoint.to_bytes())
            checkpoint.path = str(path)
        self._memory.append(checkpoint)
        self._prune()
        return checkpoint

    def _prune(self) -> None:
        while len(self._memory) > self.keep_last:
            stale = self._memory.pop(0)
            if stale.path is not None and os.path.exists(stale.path):
                os.remove(stale.path)

    # -- loading ------------------------------------------------------------

    def latest(self) -> Optional[Checkpoint]:
        if self._memory:
            return self._memory[-1]
        return self.latest_on_disk()

    def latest_on_disk(self) -> Optional[Checkpoint]:
        """Newest checkpoint file in ``directory`` (survives restarts)."""
        if self.directory is None or not self.directory.is_dir():
            return None
        files = sorted(self.directory.glob(f"{self.prefix}_*.pkl"))
        if not files:
            return None
        return self.load(files[-1])

    @staticmethod
    def load(path) -> Checkpoint:
        with open(path, "rb") as handle:
            checkpoint = Checkpoint.from_bytes(handle.read())
        checkpoint.path = str(path)
        return checkpoint

    def __len__(self) -> int:
        return len(self._memory)
