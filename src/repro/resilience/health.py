"""Numerical health guards: runtime checks and structured diagnostics.

The paper's robustness objective demands solvers that fail *diagnosably*:
a mixed-signal run that dies with ``SolverError("NaN")`` after hours of
simulation is useless at campaign scale.  Two pieces implement the
guard rail:

* :class:`HealthMonitor` — a lightweight observer attached to a solver.
  It validates every accepted state vector (NaN / Inf / overflow),
  keeps a rolling residual history, and estimates iteration-matrix
  condition numbers on demand.
* :class:`DiagnosticReport` — the structured postmortem attached to an
  enriched :class:`~repro.core.errors.SolverError` (as its
  ``diagnostic`` attribute): failure time, state snapshot, residual
  trace, attempted fallback tiers, and the chain of underlying errors.
  Reports serialize to JSON so campaign workers can persist them as
  artifacts (see :mod:`repro.campaign.runner`).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..core.errors import SolverError


@dataclass
class DiagnosticReport:
    """Structured description of a numerical failure (or recovery)."""

    message: str
    time: Optional[float] = None
    state: Optional[List[float]] = None
    residual_trace: List[float] = field(default_factory=list)
    condition_estimate: Optional[float] = None
    tiers_attempted: List[str] = field(default_factory=list)
    tier_counts: Dict[str, int] = field(default_factory=dict)
    error_chain: List[str] = field(default_factory=list)
    context: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "message": self.message,
            "time": self.time,
            "state": self.state,
            "residual_trace": [float(r) for r in self.residual_trace],
            "condition_estimate": self.condition_estimate,
            "tiers_attempted": list(self.tiers_attempted),
            "tier_counts": dict(self.tier_counts),
            "error_chain": list(self.error_chain),
            "context": dict(self.context),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=_jsonify)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DiagnosticReport":
        return cls(
            message=data.get("message", ""),
            time=data.get("time"),
            state=data.get("state"),
            residual_trace=list(data.get("residual_trace") or []),
            condition_estimate=data.get("condition_estimate"),
            tiers_attempted=list(data.get("tiers_attempted") or []),
            tier_counts=dict(data.get("tier_counts") or {}),
            error_chain=list(data.get("error_chain") or []),
            context=dict(data.get("context") or {}),
        )


def _jsonify(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def attach_diagnostic(error: SolverError,
                      report: DiagnosticReport) -> SolverError:
    """Attach ``report`` to ``error`` under the ``diagnostic`` attribute."""
    error.diagnostic = report
    return error


def diagnostic_of(error: BaseException) -> Optional[DiagnosticReport]:
    """The :class:`DiagnosticReport` attached to ``error``, if any."""
    report = getattr(error, "diagnostic", None)
    return report if isinstance(report, DiagnosticReport) else None


class HealthError(SolverError):
    """A health guard rejected a state vector (NaN/Inf/overflow)."""


class HealthMonitor:
    """Validates solver state and accumulates numerical health history.

    Solvers call :meth:`after_step` on every accepted step (the built-in
    transient solvers do so when a monitor is installed);
    :class:`~repro.resilience.fallback.ResilientTransientSolver`
    additionally validates the state returned by every synchronization
    interval.  ``overflow_limit`` flags states that are still finite but
    have clearly left the physical range — the precursor of a NaN blow-up
    one step later.
    """

    #: Telemetry hub (:mod:`repro.observe`), installed alongside the
    #: resilient wrapper; ``checked_steps``/``violations`` remain the
    #: shim API either way.
    telemetry = None

    def __init__(self, overflow_limit: float = 1e100,
                 history: int = 64):
        self.overflow_limit = float(overflow_limit)
        self.residual_history: deque = deque(maxlen=history)
        self.condition_history: deque = deque(maxlen=history)
        self.checked_steps = 0
        self.violations = 0

    # -- recording ----------------------------------------------------------

    def record_residual(self, norm: float) -> None:
        self.residual_history.append(float(norm))

    def record_condition(self, estimate: float) -> None:
        self.condition_history.append(float(estimate))

    def estimate_condition(self, matrix: np.ndarray) -> float:
        """1-norm condition estimate of ``matrix`` (recorded as a side
        effect); returns ``inf`` for singular / non-finite matrices."""
        matrix = np.asarray(matrix, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            if not np.all(np.isfinite(matrix)):
                estimate = np.inf
            else:
                try:
                    estimate = float(np.linalg.cond(matrix, 1))
                except np.linalg.LinAlgError:
                    estimate = np.inf
        self.record_condition(estimate)
        return estimate

    # -- guarding -----------------------------------------------------------

    def check_state(self, x: np.ndarray, t: Optional[float] = None,
                    context: str = "") -> None:
        """Raise :class:`HealthError` if ``x`` is NaN/Inf or overflown."""
        self.checked_steps += 1
        x = np.asarray(x, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            finite = bool(np.all(np.isfinite(x)))
            magnitude = float(np.max(np.abs(x))) if finite and x.size \
                else 0.0
        if finite and magnitude <= self.overflow_limit:
            return
        self.violations += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("health.violations").inc()
            self.telemetry.tracer.instant(
                "health.violation", track="resilience", t=t,
                context=context)
        kind = "non-finite values (NaN/Inf)" if not finite else (
            f"overflow beyond {self.overflow_limit:.1e} "
            f"(|x| = {magnitude:.3e})"
        )
        where = f" at t={t:.6e}" if t is not None else ""
        suffix = f" [{context}]" if context else ""
        error = HealthError(
            f"health guard: state vector has {kind}{where}{suffix}"
        )
        attach_diagnostic(error, self.report(
            message=str(error), time=t,
            state=[float(v) for v in x] if x.size <= 1024 else None,
        ))
        raise error

    def after_step(self, t: float, x: np.ndarray) -> None:
        """Per-accepted-step hook installed into cooperating solvers."""
        self.check_state(x, t, context="accepted step")

    # -- reporting ----------------------------------------------------------

    def report(self, message: str, time: Optional[float] = None,
               state: Optional[List[float]] = None,
               **context: Any) -> DiagnosticReport:
        """Build a :class:`DiagnosticReport` seeded with this monitor's
        accumulated residual / condition history."""
        condition = (float(self.condition_history[-1])
                     if self.condition_history else None)
        return DiagnosticReport(
            message=message,
            time=time,
            state=state,
            residual_trace=list(self.residual_history),
            condition_estimate=condition,
            context=dict(context),
        )
