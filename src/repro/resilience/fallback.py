"""Solver fallback chains: retry, shrink, escalate.

:class:`ResilientTransientSolver` wraps any
:class:`~repro.ct.solver_api.TransientSolver` and converts hard solver
failures inside a synchronization interval into a tiered recovery
ladder:

1. **primary** — the wrapped solver, as configured;
2. **halved** — the primary re-initialized from the last good state
   with its internal step halved (up to ``max_halvings`` times);
3. **bdf** — a stiff :class:`~repro.ct.solver_api.ScipyIvpSolver`
   (BDF) integrates the interval from the last good state; on success
   the result is adopted back into the primary so later intervals run
   at full speed again.

Which tier served each interval is recorded in ``tier_counts`` /
``tier_log`` — recovery is observable, not silent.  If every tier
fails, the raised :class:`~repro.core.errors.SolverError` carries a
:class:`~repro.resilience.health.DiagnosticReport` (failure time, last
good state, residual history, tiers attempted, underlying error chain)
instead of a bare message.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.errors import SolverError
from ..ct.linear import LinearDae
from ..ct.nonlinear import NonlinearSystem
from ..ct.solver_api import (
    LinearTransientSolver,
    NonlinearTransientSolver,
    ScipyIvpSolver,
    TransientSolver,
)
from .health import HealthMonitor, attach_diagnostic

#: maximum retained entries of the per-interval tier log.
TIER_LOG_LIMIT = 4096


class ResilientTransientSolver(TransientSolver):
    """Fault-tolerant wrapper around any :class:`TransientSolver`.

    Parameters
    ----------
    primary:
        The solver doing the work on the happy path.
    fallback:
        Optional explicit escalation solver; by default a BDF
        :class:`ScipyIvpSolver` is derived from the primary's system
        (linear DAEs with invertible ``C``, or nonlinear charge-form
        systems with invertible charge Jacobian).
    max_halvings:
        How many times the halved tier shrinks the primary's internal
        step before escalating.
    monitor:
        A :class:`~repro.resilience.health.HealthMonitor`; a fresh one
        is created when omitted.  It is also installed onto the primary
        (``primary.monitor``) so every *accepted internal step* is
        guarded, not just interval endpoints.
    """

    #: Telemetry hub (:mod:`repro.observe`), installed by the embedding
    #: CtTdfModule; ``tier_counts``/``tier_log`` remain the shim API and
    #: keep working with or without it.
    telemetry = None

    def __init__(self, primary: TransientSolver,
                 fallback: Optional[TransientSolver] = None,
                 max_halvings: int = 2,
                 monitor: Optional[HealthMonitor] = None,
                 bdf_method: str = "BDF",
                 bdf_rtol: float = 1e-8,
                 bdf_atol: float = 1e-10):
        self.primary = primary
        self.max_halvings = max(0, int(max_halvings))
        self.monitor = monitor if monitor is not None else HealthMonitor()
        self.bdf_method = bdf_method
        self.bdf_rtol = bdf_rtol
        self.bdf_atol = bdf_atol
        self.tier_counts = {"primary": 0, "halved": 0, "bdf": 0}
        self.tier_log: list[tuple[float, str]] = []
        self._fallback = fallback
        self._fallback_built = fallback is not None
        self._user_fallback = fallback
        self._t_good = 0.0
        self._x_good = np.asarray(primary.state, dtype=float).copy()
        if hasattr(primary, "monitor"):
            primary.monitor = self.monitor

    # -- TransientSolver contract -------------------------------------------

    def initialize(self, t0: float = 0.0, x0=None) -> np.ndarray:
        x = self.primary.initialize(t0, x0)
        self.monitor.check_state(x, t0, context="initialize")
        self._commit(t0, x)
        return x

    def snap_algebraic(self, h_reference: float) -> np.ndarray:
        """Delegate consistent re-initialization to the primary."""
        snap = getattr(self.primary, "snap_algebraic", None)
        if snap is None:
            return np.asarray(self.primary.state, dtype=float)
        x = snap(h_reference)
        self.monitor.check_state(x, self.primary.time,
                                 context="snap_algebraic")
        self._commit(self.primary.time, x)
        return x

    def advance_to(self, t: float) -> np.ndarray:
        failures: list[tuple[str, BaseException]] = []
        tiers_attempted: list[str] = []

        # Tier 1: the primary solver as configured.
        tiers_attempted.append("primary")
        try:
            x = self.primary.advance_to(t)
            self.monitor.check_state(x, t, context="primary tier")
            self._record("primary", t)
            self._commit(t, x)
            return x
        except SolverError as exc:
            failures.append(("primary", exc))

        # Tier 2: re-run the interval with a halved internal step.
        interval = t - self._t_good
        if interval > 0 and self._step_attribute() is not None \
                and self.max_halvings > 0:
            tiers_attempted.append("halved")
            for k in range(1, self.max_halvings + 1):
                saved = self._save_step()
                try:
                    self._reinit_primary(self._t_good, self._x_good)
                    self._set_step(interval / float(2 ** k))
                    x = self.primary.advance_to(t)
                    self.monitor.check_state(
                        x, t, context=f"halved tier (step/{2 ** k})")
                    self._restore_step(saved)
                    self._record("halved", t)
                    self._commit(t, x)
                    return x
                except SolverError as exc:
                    self._restore_step(saved)
                    failures.append((f"halved/{2 ** k}", exc))

        # Tier 3: escalate to the stiff external integrator.
        fallback = self._get_fallback()
        if fallback is not None and interval > 0:
            tiers_attempted.append("bdf")
            try:
                fallback.initialize(self._t_good, self._x_good)
                x = fallback.advance_to(t)
                self.monitor.check_state(x, t, context="bdf tier")
                # Adopt the recovered state back into the primary so the
                # next interval retries the fast path.
                self._reinit_primary(t, x)
                self._record("bdf", t)
                self._commit(t, x)
                return x
            except SolverError as exc:
                failures.append(("bdf", exc))

        # Every tier failed: leave the primary consistent at the last
        # good state and raise an enriched, diagnosable error.
        try:
            self._reinit_primary(self._t_good, self._x_good)
        except SolverError:  # pragma: no cover - best effort only
            pass
        chain = [f"{tier}: {type(exc).__name__}: {exc}"
                 for tier, exc in failures]
        error = SolverError(
            f"all fallback tiers exhausted advancing "
            f"{self._t_good:.6e} -> {t:.6e} "
            f"({len(failures)} attempts; last: {chain[-1]})"
        )
        report = self.monitor.report(
            message=str(error),
            time=self._t_good,
            state=[float(v) for v in np.atleast_1d(self._x_good)],
        )
        report.tiers_attempted = tiers_attempted
        report.tier_counts = dict(self.tier_counts)
        report.error_chain = chain
        report.context["target_time"] = t
        if self.telemetry is not None:
            self.telemetry.metrics.counter("resilience.failures").inc()
            self.telemetry.tracer.instant(
                "solver.failure", track="resilience", t=t,
                tiers=",".join(tiers_attempted))
        raise attach_diagnostic(error, report)

    @property
    def time(self) -> float:
        return self.primary.time

    @property
    def state(self) -> np.ndarray:
        return self.primary.state

    def replace_primary(self, primary: TransientSolver) -> None:
        """Swap in a rebuilt primary (e.g. after a topology change),
        keeping the monitor, tier counters and log."""
        self.primary = primary
        if hasattr(primary, "monitor"):
            primary.monitor = self.monitor
        self._fallback = self._user_fallback
        self._fallback_built = self._user_fallback is not None
        self._t_good = float(primary.time)
        self._x_good = np.asarray(primary.state, dtype=float).copy()

    def note_system_change(self) -> None:
        """Tell the wrapper the primary's system was re-stamped in place
        (e.g. ``LinearTransientSolver.rebind`` after a switch event).

        The derived fallback solver caches matrices from the old system,
        so it is dropped and lazily rebuilt; the last-good state is
        refreshed from the primary (the pre-event trajectory is no
        longer a valid restart point for the new topology).
        """
        self._fallback = self._user_fallback
        self._fallback_built = self._user_fallback is not None
        self._t_good = float(self.primary.time)
        self._x_good = np.asarray(self.primary.state, dtype=float).copy()

    # -- observability ------------------------------------------------------

    def metrics(self) -> dict:
        """Per-tier interval counts plus guard statistics."""
        return {
            "tiers": dict(self.tier_counts),
            "recovered_intervals": (self.tier_counts["halved"]
                                    + self.tier_counts["bdf"]),
            "checked_steps": self.monitor.checked_steps,
            "health_violations": self.monitor.violations,
        }

    # -- checkpoint support -------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "primary": self.primary.state_dict(),
            "tier_counts": dict(self.tier_counts),
            "t_good": float(self._t_good),
            "x_good": np.asarray(self._x_good, dtype=float).tolist(),
        }

    def load_state_dict(self, data: dict) -> None:
        self.primary.load_state_dict(data["primary"])
        self.tier_counts = dict(data["tier_counts"])
        self._t_good = float(data["t_good"])
        self._x_good = np.asarray(data["x_good"], dtype=float)

    # -- internals ----------------------------------------------------------

    def _commit(self, t: float, x: np.ndarray) -> None:
        self._t_good = float(t)
        self._x_good = np.asarray(x, dtype=float).copy()

    def _record(self, tier: str, t: float) -> None:
        self.tier_counts[tier] += 1
        if len(self.tier_log) < TIER_LOG_LIMIT:
            self.tier_log.append((float(t), tier))
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.metrics.counter("resilience.tier", tier=tier).inc()
            if tier != "primary":
                telemetry.tracer.instant(
                    "solver.tier_escalation", track="resilience",
                    tier=tier, t=t)

    def _reinit_primary(self, t: float, x: np.ndarray) -> None:
        self.primary.initialize(t, np.asarray(x, dtype=float).copy())

    # The halved tier needs to know where the primary keeps its internal
    # step.  The two built-ins expose different knobs; unknown plug-ins
    # simply skip the tier.

    def _step_attribute(self) -> Optional[str]:
        if isinstance(self.primary, LinearTransientSolver):
            return "h_internal"
        if isinstance(self.primary, NonlinearTransientSolver):
            return "h_max"
        return None

    def _save_step(self):
        attr = self._step_attribute()
        saved = getattr(self.primary, attr)
        extra = getattr(self.primary, "_h", None) \
            if attr == "h_max" else None
        return (attr, saved, extra)

    def _set_step(self, h: float) -> None:
        attr = self._step_attribute()
        setattr(self.primary, attr, h)
        if attr == "h_max":
            self.primary._h = None  # restart the step controller below h

    def _restore_step(self, saved) -> None:
        attr, value, extra = saved
        setattr(self.primary, attr, value)
        if attr == "h_max":
            self.primary._h = extra

    def _get_fallback(self) -> Optional[TransientSolver]:
        if not self._fallback_built:
            self._fallback = self._auto_fallback()
            self._fallback_built = True
        return self._fallback

    def _auto_fallback(self) -> Optional[TransientSolver]:
        system = getattr(self.primary, "system", None)
        try:
            if isinstance(system, LinearDae):
                return ScipyIvpSolver(
                    linear_system=system, method=self.bdf_method,
                    rtol=self.bdf_rtol, atol=self.bdf_atol,
                )
            if isinstance(system, NonlinearSystem):
                return ScipyIvpSolver(
                    nonlinear_system=system, method=self.bdf_method,
                    rtol=self.bdf_rtol, atol=self.bdf_atol,
                )
            if isinstance(self.primary, ScipyIvpSolver):
                return ScipyIvpSolver(
                    rhs=self.primary.rhs, n=self.primary.n,
                    method=self.bdf_method,
                    rtol=self.bdf_rtol, atol=self.bdf_atol,
                )
        except SolverError:
            # E.g. a singular C matrix: the ODE escalation path does not
            # exist for this system; the chain ends at the halved tier.
            return None
        return None
