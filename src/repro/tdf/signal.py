"""TDF signals and ports.

A TDF signal is a single-writer, multi-reader sample stream.  Ports
declare a *rate* (samples per module activation) and a *delay* (initial
samples), following the SystemC-AMS TDF conventions:

* an **out-port delay** of ``d`` makes the writer's samples appear ``d``
  sample slots late, the first ``d`` slots holding the port's initial
  value — this is what breaks feedback loops;
* an **in-port delay** of ``d`` makes the reader lag ``d`` samples behind
  the stream, reading its own initial value for the first ``d`` samples.

Storage: the sample stream is backed by a preallocated ``float64``
numpy ring buffer so block-capable modules (see
:meth:`~repro.tdf.module.TdfModule.processing_block`) can read and
write contiguous array views instead of issuing one ``read()``/
``write()`` call per sample.  The first write of a non-float payload
transparently demotes the signal to a plain object list with identical
semantics (and no vector fast path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.errors import ElaborationError, SynchronizationError
from ..core.time import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import TdfModule

#: Initial ring-buffer capacity (samples); grows geometrically.
_MIN_CAPACITY = 64


class TdfSignal:
    """Sample buffer connecting one TdfOut to any number of TdfIn ports."""

    def __init__(self, name: str = "tdf_signal"):
        self.name = name
        self.writer: Optional["TdfOut"] = None
        self.readers: list["TdfIn"] = []
        self._offset = 0  # absolute index of the oldest retained sample
        self._buf: Optional[np.ndarray] = np.empty(_MIN_CAPACITY)
        self._length = 0  # number of valid samples in the buffer
        self._objects: Optional[list] = None  # non-numeric fallback

    # -- elaboration -----------------------------------------------------------

    def _attach_writer(self, port: "TdfOut") -> None:
        if self.writer is not None:
            raise ElaborationError(
                f"TDF signal {self.name!r} already has writer "
                f"{self.writer.full_name()!r}"
            )
        self.writer = port

    def _attach_reader(self, port: "TdfIn") -> None:
        self.readers.append(port)

    def prime(self) -> None:
        """Install the writer's delay samples (initial tokens)."""
        self._offset = 0
        self._length = 0
        self._objects = None
        if self._buf is None:
            self._buf = np.empty(_MIN_CAPACITY)
        if self.writer is not None and self.writer.delay:
            initial = self.writer.initial_value
            if type(initial) is float:
                self._reserve(self.writer.delay)
                self._buf[: self.writer.delay] = initial
                self._length = self.writer.delay
            else:
                self._demote()
                self._objects.extend([initial] * self.writer.delay)

    # -- storage internals -------------------------------------------------------

    @property
    def is_vector(self) -> bool:
        """True while the stream is numpy-backed (block I/O possible)."""
        return self._objects is None

    def _demote(self) -> None:
        """Switch to the object-list fallback, keeping all samples."""
        if self._objects is None:
            self._objects = [float(v) for v in self._buf[: self._length]] \
                if self._length else []
            self._buf = None

    def _reserve(self, capacity: int) -> None:
        """Grow the ring so at least ``capacity`` samples fit."""
        if len(self._buf) < capacity:
            grown = np.empty(max(capacity, 2 * len(self._buf)))
            grown[: self._length] = self._buf[: self._length]
            self._buf = grown

    # -- runtime -----------------------------------------------------------------

    def set(self, index: int, value) -> None:
        slot = index - self._offset
        if slot < 0:
            raise SynchronizationError(
                f"write to already-compacted sample {index} of "
                f"{self.name!r}"
            )
        if self._objects is not None:
            samples = self._objects
            if slot == len(samples):
                samples.append(value)
            elif slot < len(samples):
                samples[slot] = value
            else:
                samples.extend([0.0] * (slot - len(samples)) + [value])
            return
        if type(value) is not float and not isinstance(value, np.floating):
            self._demote()
            self.set(index, value)
            return
        if slot >= self._length:
            self._reserve(slot + 1)
            if slot > self._length:
                self._buf[self._length: slot] = 0.0
            self._length = slot + 1
        self._buf[slot] = value

    def get(self, index: int):
        slot = index - self._offset
        if slot < 0 or slot >= self._len():
            raise SynchronizationError(
                f"read of unavailable sample {index} of {self.name!r} "
                f"(have [{self._offset}, "
                f"{self._offset + self._len()}))"
            )
        if self._objects is not None:
            return self._objects[slot]
        return float(self._buf[slot])

    def _len(self) -> int:
        return len(self._objects) if self._objects is not None \
            else self._length

    @property
    def write_head(self) -> int:
        """Absolute index one past the newest sample."""
        return self._offset + self._len()

    # -- block (vector) access ----------------------------------------------------

    def write_view(self, start: int, count: int) -> Optional[np.ndarray]:
        """Writable float64 view covering absolute ``[start, start+count)``.

        Returns None when the signal runs in object-list mode (callers
        fall back to per-sample :meth:`set`).  Samples between the
        current head and ``start`` (possible with out-port delays on
        sibling ports) are zero-filled, matching :meth:`set`.
        """
        if self._objects is not None:
            return None
        lo = start - self._offset
        if lo < 0:
            raise SynchronizationError(
                f"block write to already-compacted sample {start} of "
                f"{self.name!r}"
            )
        hi = lo + count
        self._reserve(hi)
        if lo > self._length:
            self._buf[self._length: lo] = 0.0
        self._length = max(self._length, hi)
        return self._buf[lo:hi]

    def read_view(self, start: int, count: int) -> Optional[np.ndarray]:
        """Read-only float64 view of absolute ``[start, start+count)``.

        Returns None in object-list mode.  The view aliases the ring
        buffer and is only valid until the next write or compaction.
        """
        if self._objects is not None:
            return None
        lo = start - self._offset
        if lo < 0 or lo + count > self._length:
            raise SynchronizationError(
                f"block read of unavailable samples [{start}, "
                f"{start + count}) of {self.name!r} (have "
                f"[{self._offset}, {self._offset + self._length}))"
            )
        return self._buf[lo: lo + count]

    def compact(self, min_needed: int) -> None:
        """Drop samples below ``min_needed`` (end-of-period housekeeping)."""
        drop = min_needed - self._offset
        if drop <= 0:
            return
        if self._objects is not None:
            del self._objects[:drop]
        else:
            keep = self._length - drop
            if keep > 0:
                # Slide the live window to the front of the ring.
                self._buf[:keep] = self._buf[drop: self._length]
            self._length = max(keep, 0)
        self._offset = min_needed

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of the buffered samples."""
        if self._objects is not None:
            samples = list(self._objects)
        else:
            samples = self._buf[: self._length].tolist()
        return {"samples": samples, "offset": self._offset}

    def restore(self, data: dict) -> None:
        """Reinstall a :meth:`snapshot` (after :meth:`prime`)."""
        samples = data["samples"]
        self._offset = int(data["offset"])
        if all(type(v) is float for v in samples):
            self._objects = None
            self._buf = np.empty(max(_MIN_CAPACITY, len(samples)))
            self._buf[: len(samples)] = samples
            self._length = len(samples)
        else:
            self._buf = None
            self._length = 0
            self._objects = list(samples)


class TdfPortBase:
    """Shared machinery of TDF in/out ports."""

    direction = "tdf"

    def __init__(self, name: str, rate: int = 1, delay: int = 0,
                 initial_value=0.0):
        self.name = name
        self.module: Optional["TdfModule"] = None
        self.signal: Optional[TdfSignal] = None
        self._rate = rate
        self._delay = delay
        self.initial_value = initial_value
        #: sample period of this port, set during cluster elaboration.
        self.timestep: Optional[SimTime] = None
        #: requested port timestep (a cluster-period constraint).
        self.requested_timestep: Optional[SimTime] = None

    # -- attribute setters (legal inside set_attributes) ------------------------

    @property
    def rate(self) -> int:
        return self._rate

    def set_rate(self, rate: int) -> None:
        if rate < 1:
            raise ElaborationError(
                f"port {self.full_name()!r}: rate must be >= 1"
            )
        self._rate = rate

    @property
    def delay(self) -> int:
        return self._delay

    def set_delay(self, delay: int, initial_value=None) -> None:
        if delay < 0:
            raise ElaborationError(
                f"port {self.full_name()!r}: delay must be >= 0"
            )
        self._delay = delay
        if initial_value is not None:
            self.initial_value = initial_value

    def set_timestep(self, timestep: SimTime) -> None:
        self.requested_timestep = timestep

    def full_name(self) -> str:
        owner = self.module.full_name() if self.module else "?"
        return f"{owner}.{self.name}"

    def bind(self, signal: TdfSignal) -> None:
        if self.signal is not None:
            raise ElaborationError(
                f"TDF port {self.full_name()!r} is already bound"
            )
        self.signal = signal
        self._attach()

    __call__ = bind

    def _attach(self) -> None:
        raise NotImplementedError

    def _check_bound(self) -> TdfSignal:
        if self.signal is None:
            raise ElaborationError(
                f"TDF port {self.full_name()!r} is unbound"
            )
        return self.signal


class TdfIn(TdfPortBase):
    """Consumes ``rate`` samples per activation of its module."""

    direction = "in"

    def _attach(self) -> None:
        self.signal._attach_reader(self)

    def read(self, sample: int = 0):
        """Read sample ``sample`` (0 <= sample < rate) of this activation."""
        signal = self._check_bound()
        if not 0 <= sample < self._rate:
            raise SynchronizationError(
                f"sample index {sample} out of range for rate {self._rate} "
                f"port {self.full_name()!r}"
            )
        absolute = (self.module._activation_index * self._rate + sample
                    - self._delay)
        if absolute < 0:
            return self.initial_value
        return signal.get(absolute)

    def read_block(self, activations: int) -> np.ndarray:
        """Samples for the next ``activations`` activations as one array.

        Returns a float64 array of ``activations * rate`` samples; slots
        before the stream start (in-port delay) hold the port's initial
        value.  When possible the result is a zero-copy view of the
        signal buffer, valid only for the duration of the current
        ``processing_block`` call.
        """
        signal = self._check_bound()
        count = activations * self._rate
        start = self.module._activation_index * self._rate - self._delay
        if start >= 0:
            view = signal.read_view(start, count)
            if view is not None:
                return view
            return np.fromiter(
                (signal.get(start + k) for k in range(count)),
                dtype=float, count=count,
            )
        head = min(-start, count)
        out = np.empty(count)
        out[:head] = float(self.initial_value)
        if count > head:
            view = signal.read_view(0, count - head)
            if view is not None:
                out[head:] = view
            else:
                out[head:] = [signal.get(k) for k in range(count - head)]
        return out

    def block_readable(self) -> bool:
        """True when :meth:`read_block` reproduces scalar reads exactly
        (numeric stream, float initial value) — modules that retain raw
        payloads check this before trusting the float coercion."""
        return (self.signal is not None and self.signal.is_vector
                and type(self.initial_value) is float)

    def next_needed(self) -> int:
        """Absolute index of the oldest sample this reader still needs."""
        return max(0, self.module._activation_index * self._rate
                   - self._delay)


class TdfOut(TdfPortBase):
    """Produces ``rate`` samples per activation of its module."""

    direction = "out"

    def _attach(self) -> None:
        self.signal._attach_writer(self)

    def write(self, value, sample: int = 0) -> None:
        signal = self._check_bound()
        if not 0 <= sample < self._rate:
            raise SynchronizationError(
                f"sample index {sample} out of range for rate {self._rate} "
                f"port {self.full_name()!r}"
            )
        absolute = (self._delay
                    + self.module._activation_index * self._rate + sample)
        signal.set(absolute, value)

    def write_block(self, values: np.ndarray) -> None:
        """Write ``activations * rate`` samples for consecutive activations.

        ``values`` must hold a whole number of activations' worth of
        samples, laid out activation-major (matching repeated scalar
        ``write(value, k)`` calls).
        """
        signal = self._check_bound()
        values = np.asarray(values, dtype=float).ravel()
        count = len(values)
        if count % self._rate:
            raise SynchronizationError(
                f"block write of {count} samples is not a multiple of "
                f"rate {self._rate} on port {self.full_name()!r}"
            )
        start = self._delay + self.module._activation_index * self._rate
        view = signal.write_view(start, count)
        if view is not None:
            view[:] = values
        else:
            for k in range(count):
                signal.set(start + k, float(values[k]))
