"""TDF signals and ports.

A TDF signal is a single-writer, multi-reader sample stream.  Ports
declare a *rate* (samples per module activation) and a *delay* (initial
samples), following the SystemC-AMS TDF conventions:

* an **out-port delay** of ``d`` makes the writer's samples appear ``d``
  sample slots late, the first ``d`` slots holding the port's initial
  value — this is what breaks feedback loops;
* an **in-port delay** of ``d`` makes the reader lag ``d`` samples behind
  the stream, reading its own initial value for the first ``d`` samples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.errors import ElaborationError, SynchronizationError
from ..core.time import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .module import TdfModule


class TdfSignal:
    """Sample buffer connecting one TdfOut to any number of TdfIn ports."""

    def __init__(self, name: str = "tdf_signal"):
        self.name = name
        self.writer: Optional["TdfOut"] = None
        self.readers: list["TdfIn"] = []
        self._samples: list = []
        self._offset = 0  # absolute index of _samples[0]

    # -- elaboration -----------------------------------------------------------

    def _attach_writer(self, port: "TdfOut") -> None:
        if self.writer is not None:
            raise ElaborationError(
                f"TDF signal {self.name!r} already has writer "
                f"{self.writer.full_name()!r}"
            )
        self.writer = port

    def _attach_reader(self, port: "TdfIn") -> None:
        self.readers.append(port)

    def prime(self) -> None:
        """Install the writer's delay samples (initial tokens)."""
        self._samples = []
        self._offset = 0
        if self.writer is not None and self.writer.delay:
            initial = self.writer.initial_value
            self._samples = [initial] * self.writer.delay

    # -- runtime -----------------------------------------------------------------

    def set(self, index: int, value) -> None:
        slot = index - self._offset
        if slot == len(self._samples):
            self._samples.append(value)
        elif 0 <= slot < len(self._samples):
            self._samples[slot] = value
        elif slot > len(self._samples):
            self._samples.extend(
                [0.0] * (slot - len(self._samples)) + [value]
            )
        else:
            raise SynchronizationError(
                f"write to already-compacted sample {index} of "
                f"{self.name!r}"
            )

    def get(self, index: int):
        slot = index - self._offset
        if slot < 0 or slot >= len(self._samples):
            raise SynchronizationError(
                f"read of unavailable sample {index} of {self.name!r} "
                f"(have [{self._offset}, "
                f"{self._offset + len(self._samples)}))"
            )
        return self._samples[slot]

    @property
    def write_head(self) -> int:
        """Absolute index one past the newest sample."""
        return self._offset + len(self._samples)

    def compact(self, min_needed: int) -> None:
        """Drop samples below ``min_needed`` (end-of-period housekeeping)."""
        drop = min_needed - self._offset
        if drop > 0:
            del self._samples[:drop]
            self._offset = min_needed

    # -- checkpoint support ------------------------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of the buffered samples."""
        return {"samples": list(self._samples), "offset": self._offset}

    def restore(self, data: dict) -> None:
        """Reinstall a :meth:`snapshot` (after :meth:`prime`)."""
        self._samples = list(data["samples"])
        self._offset = int(data["offset"])


class TdfPortBase:
    """Shared machinery of TDF in/out ports."""

    direction = "tdf"

    def __init__(self, name: str, rate: int = 1, delay: int = 0,
                 initial_value=0.0):
        self.name = name
        self.module: Optional["TdfModule"] = None
        self.signal: Optional[TdfSignal] = None
        self._rate = rate
        self._delay = delay
        self.initial_value = initial_value
        #: sample period of this port, set during cluster elaboration.
        self.timestep: Optional[SimTime] = None
        #: requested port timestep (a cluster-period constraint).
        self.requested_timestep: Optional[SimTime] = None

    # -- attribute setters (legal inside set_attributes) ------------------------

    @property
    def rate(self) -> int:
        return self._rate

    def set_rate(self, rate: int) -> None:
        if rate < 1:
            raise ElaborationError(
                f"port {self.full_name()!r}: rate must be >= 1"
            )
        self._rate = rate

    @property
    def delay(self) -> int:
        return self._delay

    def set_delay(self, delay: int, initial_value=None) -> None:
        if delay < 0:
            raise ElaborationError(
                f"port {self.full_name()!r}: delay must be >= 0"
            )
        self._delay = delay
        if initial_value is not None:
            self.initial_value = initial_value

    def set_timestep(self, timestep: SimTime) -> None:
        self.requested_timestep = timestep

    def full_name(self) -> str:
        owner = self.module.full_name() if self.module else "?"
        return f"{owner}.{self.name}"

    def bind(self, signal: TdfSignal) -> None:
        if self.signal is not None:
            raise ElaborationError(
                f"TDF port {self.full_name()!r} is already bound"
            )
        self.signal = signal
        self._attach()

    __call__ = bind

    def _attach(self) -> None:
        raise NotImplementedError

    def _check_bound(self) -> TdfSignal:
        if self.signal is None:
            raise ElaborationError(
                f"TDF port {self.full_name()!r} is unbound"
            )
        return self.signal


class TdfIn(TdfPortBase):
    """Consumes ``rate`` samples per activation of its module."""

    direction = "in"

    def _attach(self) -> None:
        self.signal._attach_reader(self)

    def read(self, sample: int = 0):
        """Read sample ``sample`` (0 <= sample < rate) of this activation."""
        signal = self._check_bound()
        if not 0 <= sample < self._rate:
            raise SynchronizationError(
                f"sample index {sample} out of range for rate {self._rate} "
                f"port {self.full_name()!r}"
            )
        absolute = (self.module._activation_index * self._rate + sample
                    - self._delay)
        if absolute < 0:
            return self.initial_value
        return signal.get(absolute)

    def next_needed(self) -> int:
        """Absolute index of the oldest sample this reader still needs."""
        return max(0, self.module._activation_index * self._rate
                   - self._delay)


class TdfOut(TdfPortBase):
    """Produces ``rate`` samples per activation of its module."""

    direction = "out"

    def _attach(self) -> None:
        self.signal._attach_writer(self)

    def write(self, value, sample: int = 0) -> None:
        signal = self._check_bound()
        if not 0 <= sample < self._rate:
            raise SynchronizationError(
                f"sample index {sample} out of range for rate {self._rate} "
                f"port {self.full_name()!r}"
            )
        absolute = (self._delay
                    + self.module._activation_index * self._rate + sample)
        signal.set(absolute, value)
