"""TDF modules and DE converter ports.

A :class:`TdfModule` encapsulates behaviour executed at a fixed timestep
under static dataflow semantics — the paper's "continuous behaviour
encapsulated in static dataflow modules".  Subclasses override:

* :meth:`set_attributes` — declare rates, delays, and timesteps;
* :meth:`initialize` — runs once after cluster elaboration, before t=0;
* :meth:`processing` — runs once per activation.

Converter ports bridge the DE kernel:

* :class:`TdfDeIn` samples a DE signal at cluster-period boundaries;
* :class:`TdfDeOut` writes TDF samples onto a DE signal at the correct
  simulation times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..core.errors import ElaborationError, SynchronizationError
from ..core.events import Event
from ..core.module import Module
from ..core.port import InPort, OutPort
from ..core.time import FEMTO, SimTime, ZERO_TIME
from .signal import TdfIn, TdfOut, TdfPortBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cluster import TdfCluster


class TdfModule(Module):
    """Base class for timed-dataflow modules."""

    #: Set True on subclasses whose ``processing`` has side effects the
    #: cluster may not run ahead of kernel time (e.g. poking DE-visible
    #: state outside converter ports).  Disables period batching for the
    #: whole cluster; block fusion within one period is unaffected.
    batch_unsafe = False

    #: Telemetry hub shared by the owning cluster (set during cluster
    #: elaboration; ``None`` = observability off).
    _telemetry = None

    def __init__(self, name: str, parent: Optional[Module] = None):
        super().__init__(name, parent)
        self._activation_index = 0
        self._cluster: Optional["TdfCluster"] = None
        #: module timestep, assigned by timestep propagation.
        self.timestep: Optional[SimTime] = None
        self.requested_timestep: Optional[SimTime] = None
        self.activation_count = 0

    # -- user API -----------------------------------------------------------------

    def set_attributes(self) -> None:
        """Override to declare rates, delays, and timesteps."""

    def initialize(self) -> None:
        """Override for pre-simulation setup (timesteps are known here)."""

    def processing(self) -> None:
        """Override: the per-activation behaviour."""
        raise NotImplementedError

    def processing_block(self, n: int) -> None:
        """Override to process ``n`` consecutive activations at once.

        A block-capable implementation must be *observationally
        identical* to ``n`` sequential :meth:`processing` calls — same
        output samples bit-for-bit, same internal state afterwards.  Use
        :meth:`TdfIn.read_block` / :meth:`TdfOut.write_block` for port
        I/O and :meth:`activation_times` for the activation instants.
        Modules that do not override this run sample-at-a-time inside
        the compiled schedule.
        """
        raise NotImplementedError

    def set_timestep(self, timestep: SimTime) -> None:
        """Request this module's activation period."""
        self.requested_timestep = timestep

    @property
    def local_time(self) -> SimTime:
        """Time of the current activation (may run ahead of kernel time)."""
        if self._cluster is None or self.timestep is None:
            return ZERO_TIME
        return SimTime.from_ticks(
            self._cluster.epoch_ticks
            + self.activation_count * self.timestep.ticks
        )

    # -- block-mode helpers ----------------------------------------------------

    def supports_block(self) -> bool:
        """True when the subclass overrides :meth:`processing_block`."""
        return (type(self).processing_block
                is not TdfModule.processing_block)

    def activation_times(self, n: int):
        """``local_time.to_seconds()`` of the next ``n`` activations.

        Bit-identical to evaluating :attr:`local_time` per activation:
        the tick arithmetic stays exact-integer and the single
        femtosecond scaling matches ``SimTime.to_seconds``.
        """
        epoch = self._cluster.epoch_ticks if self._cluster else 0
        ts = self.timestep.ticks if self.timestep else 0
        ticks = epoch + (self.activation_count
                         + np.arange(n, dtype=np.int64)) * ts
        return ticks * FEMTO

    def sample_times(self, n: int, rate: int):
        """Per-sample times for ``n`` activations of a rate-``rate`` port.

        Matches the scalar idiom ``local_time.to_seconds() + k * step``
        (with ``step = timestep.to_seconds() / rate``) bit-for-bit: the
        per-activation base time and the ``k * step`` offset are computed
        and added in the same order.
        """
        base = self.activation_times(n)
        if rate == 1:
            return base
        step = self.timestep.to_seconds() / rate
        offsets = np.arange(rate) * step
        return (base[:, None] + offsets[None, :]).ravel()

    def de_coupled(self) -> bool:
        """True when the module touches the DE world directly.

        Covers converter ports and raw DE ports held as attributes
        (e.g. a TDF module reading an ``InPort`` each activation).
        Such modules pin their cluster to one-period-at-a-time
        execution so DE-side values stay synchronized.
        """
        if self.converter_ports():
            return True
        return any(isinstance(v, (InPort, OutPort))
                   for v in vars(self).values())

    # -- framework plumbing -----------------------------------------------------------

    def tdf_ports(self) -> list[TdfPortBase]:
        return [v for v in vars(self).values()
                if isinstance(v, TdfPortBase)]

    def converter_ports(self) -> list:
        return [v for v in vars(self).values()
                if isinstance(v, (TdfDeIn, TdfDeOut))]

    def ams_elaborate(self, simulator) -> None:
        from .cluster import TdfRegistry

        registry = getattr(simulator, "_tdf_registry", None)
        if registry is None:
            registry = TdfRegistry()
            simulator._tdf_registry = registry
            simulator.add_elaboration_finalizer(registry.finalize)
        registry.add_module(self)
        for port in self.tdf_ports():
            port.module = self
        for port in self.converter_ports():
            port.module = self

    def _activate(self) -> None:
        self.processing()
        self._activation_index += 1
        self.activation_count += 1

    def _activate_block(self, n: int) -> None:
        self.processing_block(n)
        self._activation_index += n
        self.activation_count += n

    def _scalar_fallback(self, n: int) -> None:
        """Run ``processing()`` ``n`` times from inside
        ``processing_block`` (for parameterizations a vectorized path
        cannot reproduce bit-exactly, e.g. data-dependent RNG draws).
        Temporarily advances the activation counters so per-activation
        port indexing and ``local_time`` stay correct; ``_activate_block``
        applies the real increment afterwards.
        """
        for _ in range(n):
            self.processing()
            self._activation_index += 1
            self.activation_count += 1
        self._activation_index -= n
        self.activation_count -= n

    # -- checkpoint hooks -------------------------------------------------------

    def checkpoint_state(self):
        """Override to contribute extra picklable state to checkpoints
        (e.g. an embedded CT solver's ``state_dict``)."""
        return None

    def restore_state(self, data) -> None:
        """Override to reinstall :meth:`checkpoint_state` data."""


class TdfDeIn:
    """Converter port: reads a DE signal into the TDF world.

    The value is sampled when the owning cluster wakes (once per cluster
    period); all activations within that period observe the sample — the
    fixed-timestep SDF<->DE synchronization of the paper's Phase 1.
    """

    def __init__(self, name: str, initial_value=0.0):
        self.name = name
        self.module: Optional[TdfModule] = None
        self.port: InPort = InPort(f"{name}.de")
        self._sampled = initial_value

    def bind(self, signal) -> None:
        self.port.bind(signal)

    __call__ = bind

    def sample(self) -> None:
        """Latch the DE value (called by the cluster at period start)."""
        self._sampled = self.port.read()

    def read(self):
        return self._sampled

    def full_name(self) -> str:
        owner = self.module.full_name() if self.module else "?"
        return f"{owner}.{self.name}"


class TdfDeOut:
    """Converter port: writes TDF samples onto a DE signal.

    Samples written during a cluster period are replayed onto the DE
    signal at their sample times by a dedicated writer thread.
    """

    def __init__(self, name: str, rate: int = 1):
        self.name = name
        self.module: Optional[TdfModule] = None
        self.port: OutPort = OutPort(f"{name}.de")
        self.rate = rate
        #: per-period queue of (offset_ticks, value), filled by write().
        self._queue: list[tuple[int, object]] = []
        self._ready = Event(f"{name}.samples_ready")

    def bind(self, signal) -> None:
        self.port.bind(signal)

    __call__ = bind

    def write(self, value, sample: int = 0) -> None:
        if self.module is None or self.module.timestep is None:
            raise SynchronizationError(
                f"converter port {self.full_name()!r} used before "
                "cluster elaboration"
            )
        if not 0 <= sample < self.rate:
            raise SynchronizationError(
                f"sample index {sample} out of range for rate {self.rate} "
                f"converter {self.full_name()!r}"
            )
        step = self.module.timestep.ticks // self.rate
        offset = (self.module._activation_index * self.module.timestep.ticks
                  + sample * step)
        self._queue.append((offset, value))

    def write_at(self, local_ticks: int, value) -> None:
        """Queue a value at an explicit cluster-local time (in ticks).

        Used for sub-sample event timing (e.g. interpolated threshold
        crossings): the time need not align with any sample instant,
        only lie within the current cluster period.
        """
        self._queue.append((int(local_ticks), value))

    def full_name(self) -> str:
        owner = self.module.full_name() if self.module else "?"
        return f"{owner}.{self.name}"

    # -- cluster plumbing ---------------------------------------------------------

    def make_writer_thread(self, kernel) -> None:
        """Install the DE process replaying queued samples each period."""
        from ..core.process import THREAD, Process

        def writer():
            while True:
                yield self._ready
                batch, self._queue = self._queue, []
                batch.sort(key=lambda item: item[0])
                elapsed = 0
                for offset, value in batch:
                    if offset > elapsed:
                        yield SimTime.from_ticks(offset - elapsed)
                        elapsed = offset
                    self.port.write(value)

        # The thread must initialize (run once) so it parks on the
        # ready event before the first cluster period flushes samples.
        process = Process(f"{self.full_name()}.writer", THREAD, writer)
        kernel.register_process(process)

    def flush(self, period_base_ticks: int) -> None:
        """Signal the writer thread that a period's samples are queued.

        ``period_base_ticks`` is the cluster-local time of the period
        start; queued absolute offsets are rebased so the writer thread
        replays them relative to the current kernel time.
        """
        if self._queue:
            self._queue = [
                (offset - period_base_ticks, value)
                for offset, value in self._queue
            ]
            self._ready.notify()
