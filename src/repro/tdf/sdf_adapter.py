"""Bridging untimed SDF graphs into the timed dataflow world.

The paper's MoC taxonomy includes untimed functional models that
"interact in a timeless way through causality rules".  An
:class:`SdfGraphModule` embeds a whole :class:`~repro.sdf.SdfGraph`
inside one TDF module: per activation it feeds the graph's designated
input actors, runs exactly one schedule period, and emits the designated
outputs — giving the untimed graph a time base without touching its
internal causality.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.errors import ElaborationError
from ..core.module import Module
from ..sdf.graph import Actor, SdfGraph
from .module import TdfModule
from .signal import TdfIn, TdfOut


class SdfInputActor(Actor):
    """Graph-side entry point: emits samples handed over by the TDF
    wrapper (``rate`` tokens per graph iteration)."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, output_rates={"out": rate})
        self.pending: list = []

    def fire(self, inputs):
        rate = self.output_rates["out"]
        if len(self.pending) < rate:
            raise ElaborationError(
                f"SDF input {self.name!r} underflow: wrapper supplied "
                f"{len(self.pending)} tokens, needs {rate}"
            )
        head, self.pending = self.pending[:rate], self.pending[rate:]
        return {"out": head}


class SdfOutputActor(Actor):
    """Graph-side exit point: collects tokens for the TDF wrapper."""

    def __init__(self, name: str, rate: int = 1):
        super().__init__(name, input_rates={"in": rate})
        self.collected: list = []

    def fire(self, inputs):
        self.collected.extend(inputs["in"])
        return {}


class SdfGraphModule(TdfModule):
    """Executes one SDF schedule period per TDF activation.

    ``inputs`` / ``outputs`` are the :class:`SdfInputActor` /
    :class:`SdfOutputActor` boundary actors already connected inside the
    graph.  The wrapper creates one TDF port per boundary actor, with
    the port rate equal to the actor's token rate times that actor's
    repetition count (tokens moved per period).
    """

    def __init__(self, name: str, graph: SdfGraph,
                 inputs: Sequence[SdfInputActor] = (),
                 outputs: Sequence[SdfOutputActor] = (),
                 parent: Optional[Module] = None):
        super().__init__(name, parent)
        self.graph = graph
        repetitions = graph.repetition_vector()
        graph.schedule()
        self._inputs: list[tuple[TdfIn, SdfInputActor]] = []
        self._outputs: list[tuple[TdfOut, SdfOutputActor]] = []
        for actor in inputs:
            if not isinstance(actor, SdfInputActor):
                raise ElaborationError(
                    f"{actor.name!r} is not an SdfInputActor"
                )
            tokens = actor.output_rates["out"] * repetitions[actor]
            port = TdfIn(f"in_{actor.name}", rate=tokens)
            port.module = self
            setattr(self, f"in_{actor.name}", port)
            self._inputs.append((port, actor))
        for actor in outputs:
            if not isinstance(actor, SdfOutputActor):
                raise ElaborationError(
                    f"{actor.name!r} is not an SdfOutputActor"
                )
            tokens = actor.input_rates["in"] * repetitions[actor]
            port = TdfOut(f"out_{actor.name}", rate=tokens)
            port.module = self
            setattr(self, f"out_{actor.name}", port)
            self._outputs.append((port, actor))

    def processing(self):
        for port, actor in self._inputs:
            actor.pending.extend(
                port.read(k) for k in range(port.rate)
            )
        self.graph.run(1)
        for port, actor in self._outputs:
            if len(actor.collected) < port.rate:
                raise ElaborationError(
                    f"SDF output {actor.name!r} produced "
                    f"{len(actor.collected)} tokens, port needs "
                    f"{port.rate}"
                )
            for k in range(port.rate):
                port.write(actor.collected[k], k)
            del actor.collected[: port.rate]

    def processing_block(self, n):
        if not all(port.block_readable() for port, _a in self._inputs):
            # Non-numeric token streams must reach the actors with
            # their original payload types.
            self._scalar_fallback(n)
            return
        feeds = [(port, actor, port.read_block(n))
                 for port, actor in self._inputs]
        gathered: list[list] = [[] for _ in self._outputs]
        for a in range(n):
            for port, actor, data in feeds:
                actor.pending.extend(
                    data[a * port.rate:(a + 1) * port.rate].tolist()
                )
            self.graph.run(1)
            for slot, (port, actor) in enumerate(self._outputs):
                if len(actor.collected) < port.rate:
                    raise ElaborationError(
                        f"SDF output {actor.name!r} produced "
                        f"{len(actor.collected)} tokens, port needs "
                        f"{port.rate}"
                    )
                gathered[slot].extend(actor.collected[: port.rate])
                del actor.collected[: port.rate]
        for (port, actor), values in zip(self._outputs, gathered):
            if all(type(v) is float for v in values):
                port.write_block(np.asarray(values))
            else:
                # Arbitrary token types: replay the scalar writes with
                # explicit per-activation indexing.
                signal = port._check_bound()
                base = port.delay + self._activation_index * port.rate
                for k, value in enumerate(values):
                    signal.set(base + k, value)
