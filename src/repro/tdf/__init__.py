"""`repro.tdf` — the timed dataflow model of computation.

TDF modules execute under static dataflow semantics bound to physical
time: clusters of connected modules are scheduled statically, activated
at fixed timesteps, and synchronized with the DE kernel through
converter ports.  This is the paper's Phase 1 synchronization mechanism
("synchronisation between discrete event and continuous time MoCs using
static dataflow semantics").
"""

from .cluster import TdfCluster, TdfRegistry
from .sdf_adapter import SdfGraphModule, SdfInputActor, SdfOutputActor
from .module import TdfDeIn, TdfDeOut, TdfModule
from .signal import TdfIn, TdfOut, TdfSignal

__all__ = [
    "SdfGraphModule", "SdfInputActor", "SdfOutputActor", "TdfCluster", "TdfDeIn", "TdfDeOut", "TdfIn", "TdfModule", "TdfOut",
    "TdfRegistry", "TdfSignal",
]
