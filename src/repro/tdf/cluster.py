"""TDF cluster discovery, rate analysis, timestep propagation, static
scheduling, and runtime execution.

A *cluster* is a maximal set of TDF modules connected through TDF
signals.  Elaboration performs, in order:

1. **Rate analysis** — the SDF balance equations over port rates yield
   each module's repetition count per cluster period.
2. **Timestep propagation** — user-requested module/port timesteps are
   converted into cluster-period constraints (``period = repetitions *
   module_timestep``; ``module_timestep = rate * port_timestep``); all
   constraints must agree, and every derived timestep must be an integer
   number of time ticks.
3. **Static scheduling** — a PASS is constructed by symbolic execution
   honouring port delays as initial tokens; failure means deadlock.
4. **Consistent initialization** — signals are primed with delay
   samples and every module's ``initialize`` hook runs before time 0.

At runtime each cluster is one kernel thread waking once per cluster
period: it samples the DE converter inputs, executes a full schedule
iteration (modules may run *ahead* of kernel time within the period),
flushes converter outputs (replayed at exact sample times), and sleeps.

**Block execution** (the default) compiles the static schedule into
run-length-encoded entries — consecutive activations of one module fuse
into a single ``processing_block(n)`` call when the module opts in —
and, for clusters with no DE coupling at all, batches up to
``tdf_batch`` periods into one super-iteration per wake-up.  Both
transformations are observationally identical to scalar execution:
dataflow determinism makes the sample streams independent of firing
order, and batching is clamped to the current ``run()`` boundary so the
number of executed periods matches the scalar wake-up count exactly.
"""

from __future__ import annotations

import time as _time
from fractions import Fraction
from math import gcd
from typing import Optional

from ..core.errors import (
    ElaborationError,
    SchedulingError,
    SynchronizationError,
)
from ..core.process import THREAD, Process
from ..core.time import SimTime
from .module import TdfDeIn, TdfDeOut, TdfModule
from .signal import TdfIn, TdfOut


class TdfRegistry:
    """Collects TDF modules during elaboration; builds clusters at the end."""

    def __init__(self):
        self.modules: list[TdfModule] = []
        self.clusters: list[TdfCluster] = []

    def add_module(self, module: TdfModule) -> None:
        self.modules.append(module)

    def finalize(self, simulator) -> None:
        for module in self.modules:
            module.set_attributes()
        clusters = _discover_clusters(self.modules)
        for k, members in enumerate(clusters):
            cluster = TdfCluster(
                f"cluster{k}", members,
                block_mode=getattr(simulator, "tdf_block", True),
                batch=getattr(simulator, "tdf_batch", 16),
                compact_every=getattr(simulator, "tdf_compact_every", 64),
                telemetry=getattr(simulator, "telemetry", None),
            )
            cluster.elaborate()
            cluster.install(simulator.kernel)
            if getattr(simulator, "_profiling", False):
                cluster.enable_profiling()
            self.clusters.append(cluster)


def _discover_clusters(modules: list[TdfModule]) -> list[list[TdfModule]]:
    """Union-find over modules sharing TDF signals."""
    parent: dict[int, int] = {id(m): id(m) for m in modules}
    by_id = {id(m): m for m in modules}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    signals = {}
    for module in modules:
        for port in module.tdf_ports():
            if port.signal is not None:
                signals.setdefault(id(port.signal), []).append(module)
    for members in signals.values():
        for other in members[1:]:
            union(id(members[0]), id(other))
    groups: dict[int, list[TdfModule]] = {}
    for module in modules:
        groups.setdefault(find(id(module)), []).append(module)
    return list(groups.values())


class TdfCluster:
    """One synchronized group of TDF modules."""

    def __init__(self, name: str, modules: list[TdfModule],
                 block_mode: bool = True, batch: int = 16,
                 compact_every: int = 64, telemetry=None):
        self.name = name
        self.modules = modules
        #: Telemetry hub (:mod:`repro.observe`); metrics are pre-bound
        #: here so the wake-up hot path never resolves names.  ``None``
        #: keeps ``execute_periods`` on a single ``is None`` test.
        self.telemetry = telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            self._m_seconds = metrics.counter("moc.tdf.seconds")
            self._m_periods = metrics.counter("tdf.periods", cluster=name)
            self._m_activations = metrics.counter(
                "tdf.activations", cluster=name)
            self._m_batch = metrics.histogram(
                "tdf.batch_periods", cluster=name)
            self._m_occupancy = metrics.histogram(
                "tdf.buffer_occupancy", cluster=name)
            self._m_sync_in = metrics.counter("sync.de_to_tdf.samples")
            self._m_sync_out = metrics.counter("sync.tdf_to_de.samples")
        self.period: Optional[SimTime] = None
        self.repetitions: dict[int, int] = {}
        self.schedule: list[TdfModule] = []
        self.epoch_ticks = 0
        self.period_count = 0
        self.block_mode = block_mode
        self.batch = max(1, int(batch)) if block_mode else 1
        self.compact_every = max(1, int(compact_every))
        self._next_compact = self.compact_every
        #: compiled schedules: periods-per-iteration -> RLE entry list.
        self._entry_cache: dict[int, list] = {}
        #: decided during elaborate(): may this cluster batch periods?
        self._batch_safe = False
        #: per-module wall-clock accounting, enabled by
        #: Simulator.enable_profiling().
        self._profile: Optional[dict] = None
        #: the kernel this cluster was installed on (set by install()).
        self._kernel = None
        self._signals: list = []
        self._de_inputs: list[TdfDeIn] = []
        self._de_outputs: list[TdfDeOut] = []
        #: set by restore_state(): the period at checkpoint time already
        #: executed before the snapshot, so the resumed driver must sleep
        #: one period before its first execute_period().
        self._skip_first_period = False

    # -- elaboration ------------------------------------------------------------

    def elaborate(self) -> None:
        self._collect_endpoints()
        self._check_bindings()
        self._solve_rates()
        self._propagate_timesteps()
        self._build_schedule()
        self._batch_safe = (
            self.batch > 1
            and not self._de_inputs
            and not self._de_outputs
            and not any(m.batch_unsafe or m.de_coupled()
                        for m in self.modules)
        )
        for signal in self._signals:
            signal.prime()
        for module in self.modules:
            module._cluster = self
            module._telemetry = self.telemetry
        for module in self.modules:
            module.initialize()

    def _collect_endpoints(self) -> None:
        seen: set[int] = set()
        for module in self.modules:
            for port in module.tdf_ports():
                if port.signal is not None and id(port.signal) not in seen:
                    seen.add(id(port.signal))
                    self._signals.append(port.signal)
            for converter in module.converter_ports():
                if isinstance(converter, TdfDeIn):
                    self._de_inputs.append(converter)
                else:
                    self._de_outputs.append(converter)

    def _check_bindings(self) -> None:
        for module in self.modules:
            for port in module.tdf_ports():
                port._check_bound()
        for signal in self._signals:
            if signal.writer is None:
                raise ElaborationError(
                    f"TDF signal {signal.name!r} has no writer"
                )

    def _edges(self):
        """(writer_module, w_rate, reader_module, r_rate, initial_tokens)."""
        for signal in self._signals:
            writer = signal.writer
            for reader in signal.readers:
                yield (writer.module, writer.rate, reader.module,
                       reader.rate, writer.delay + reader.delay,
                       writer, reader)

    def _solve_rates(self) -> None:
        ratio: dict[int, Optional[Fraction]] = {
            id(m): None for m in self.modules
        }
        adjacency: dict[int, list[tuple[int, Fraction]]] = {
            id(m): [] for m in self.modules
        }
        for w_mod, w_rate, r_mod, r_rate, _d, _wp, _rp in self._edges():
            factor = Fraction(w_rate, r_rate)
            adjacency[id(w_mod)].append((id(r_mod), factor))
            adjacency[id(r_mod)].append((id(w_mod), 1 / factor))
        names = {id(m): m.full_name() for m in self.modules}
        for module in self.modules:
            if ratio[id(module)] is not None:
                continue
            ratio[id(module)] = Fraction(1)
            stack = [id(module)]
            while stack:
                node = stack.pop()
                for neighbor, factor in adjacency[node]:
                    implied = ratio[node] * factor
                    if ratio[neighbor] is None:
                        ratio[neighbor] = implied
                        stack.append(neighbor)
                    elif ratio[neighbor] != implied:
                        raise SchedulingError(
                            f"TDF cluster {self.name!r} is "
                            f"rate-inconsistent at {names[neighbor]!r}"
                        )
        lcm = 1
        for value in ratio.values():
            lcm = lcm * value.denominator // gcd(lcm, value.denominator)
        counts = {key: int(r * lcm) for key, r in ratio.items()}
        overall = 0
        for count in counts.values():
            overall = gcd(overall, count)
        self.repetitions = {key: c // overall for key, c in counts.items()}

    def _propagate_timesteps(self) -> None:
        period_ticks: Optional[int] = None
        origin = ""
        for module in self.modules:
            constraints: list[tuple[int, str]] = []
            if module.requested_timestep is not None:
                constraints.append((
                    module.requested_timestep.ticks,
                    module.full_name(),
                ))
            for port in module.tdf_ports():
                if port.requested_timestep is not None:
                    constraints.append((
                        port.requested_timestep.ticks * port.rate,
                        port.full_name(),
                    ))
            for module_ticks, name in constraints:
                candidate = module_ticks * self.repetitions[id(module)]
                if period_ticks is None:
                    period_ticks, origin = candidate, name
                elif period_ticks != candidate:
                    raise ElaborationError(
                        f"inconsistent timesteps in cluster {self.name!r}: "
                        f"{origin!r} implies period "
                        f"{SimTime.from_ticks(period_ticks)}, {name!r} "
                        f"implies {SimTime.from_ticks(candidate)}"
                    )
        if period_ticks is None:
            raise ElaborationError(
                f"no timestep assigned anywhere in TDF cluster "
                f"{self.name!r}; call set_timestep() on at least one "
                "module or port"
            )
        self.period = SimTime.from_ticks(period_ticks)
        for module in self.modules:
            reps = self.repetitions[id(module)]
            if period_ticks % reps:
                raise ElaborationError(
                    f"cluster period {self.period} is not divisible by "
                    f"{module.full_name()!r}'s {reps} activations"
                )
            module.timestep = SimTime.from_ticks(period_ticks // reps)
            for port in module.tdf_ports():
                if module.timestep.ticks % port.rate:
                    raise ElaborationError(
                        f"module timestep {module.timestep} of "
                        f"{module.full_name()!r} is not divisible by "
                        f"port rate {port.rate}"
                    )
                port.timestep = SimTime.from_ticks(
                    module.timestep.ticks // port.rate
                )

    def _simulate_schedule(self, periods: int) -> list:
        """Token-simulate ``periods`` cluster periods into an RLE PASS.

        Returns ``[(module, run_length), ...]``: the greedy simulation
        fires each module as many consecutive times as its input tokens
        allow, so consecutive activations fuse naturally — for a simple
        chain every module appears once with ``run_length ==
        repetitions * periods``.  Raises on deadlock.
        """
        edges = list(self._edges())
        tokens = {
            (id(wp), id(rp)): d for _w, _wr, _r, _rr, d, wp, rp in edges
        }
        remaining = {
            id(m): self.repetitions[id(m)] * periods for m in self.modules
        }
        inputs_of = {id(m): [] for m in self.modules}
        outputs_of = {id(m): [] for m in self.modules}
        for w_mod, w_rate, r_mod, r_rate, _d, wp, rp in edges:
            key = (id(wp), id(rp))
            inputs_of[id(r_mod)].append((key, r_rate))
            outputs_of[id(w_mod)].append((key, w_rate))
        entries: list[tuple[TdfModule, int, bool]] = []
        progress = True
        while progress and any(remaining.values()):
            progress = False
            for module in self.modules:
                # Token counts before the run: a fused block call reads
                # its whole input up front, which is only legal when
                # every input edge already holds the run's full demand
                # (feedback loops through the module itself interleave
                # production with consumption and must stay scalar).
                before = [tokens[key]
                          for key, _need in inputs_of[id(module)]]
                fired = 0
                while remaining[id(module)] > 0 and all(
                    tokens[key] >= need
                    for key, need in inputs_of[id(module)]
                ):
                    for key, need in inputs_of[id(module)]:
                        tokens[key] -= need
                    for key, produced in outputs_of[id(module)]:
                        tokens[key] += produced
                    remaining[id(module)] -= 1
                    fired += 1
                if fired:
                    progress = True
                    fusable = all(
                        have >= fired * need
                        for have, (_key, need) in zip(
                            before, inputs_of[id(module)])
                    )
                    if entries and entries[-1][0] is module:
                        prev = entries[-1]
                        entries[-1] = (module, prev[1] + fired, False)
                    else:
                        entries.append((module, fired, fusable))
        if any(remaining.values()):
            stuck = [m.full_name() for m in self.modules
                     if remaining[id(m)] > 0]
            raise SchedulingError(
                f"TDF cluster {self.name!r} deadlocks (insufficient "
                f"delays on a feedback loop); stuck modules: {stuck}"
            )
        return entries

    def _build_schedule(self) -> None:
        runs = self._simulate_schedule(1)
        self.schedule = [m for m, count, _ok in runs
                         for _ in range(count)]

    def _entries_for(self, periods: int) -> list:
        """Compiled schedule for ``periods``: (module, count, use_block).

        ``use_block`` routes the run through ``processing_block``; runs
        of modules that do not opt in (or single activations, where the
        scalar call is cheaper, or runs whose inputs are not fully
        available up front) execute sample-at-a-time.
        """
        cached = self._entry_cache.get(periods)
        if cached is None:
            cached = [
                (module, count,
                 self.block_mode and count > 1 and fusable
                 and module.supports_block())
                for module, count, fusable
                in self._simulate_schedule(periods)
            ]
            self._entry_cache[periods] = cached
        return cached

    # -- runtime ----------------------------------------------------------------

    def install(self, kernel) -> None:
        """Register the cluster driver thread and converter writers."""
        self._kernel = kernel
        for converter in self._de_outputs:
            converter.make_writer_thread(kernel)
        process = Process(
            f"tdf.{self.name}.driver", THREAD, self._drive,
        )
        kernel.register_process(process)

    def _drive(self):
        assert self.period is not None
        if self._skip_first_period:
            self._skip_first_period = False
            # Resume from a checkpoint: period_count periods already ran
            # before the snapshot, so sleep until the next period start.
            resume = self.period_count * self.period.ticks
            yield SimTime.from_ticks(
                max(resume - self._kernel.now_ticks, 0)
            )
        while True:
            n = self._periods_this_wake()
            self.execute_periods(n)
            yield SimTime.from_ticks(n * self.period.ticks)

    def _periods_this_wake(self) -> int:
        """How many periods to batch into the current wake-up.

        Batching runs the cluster *ahead* of kernel time, which is only
        observationally safe with zero DE coupling; the count is clamped
        to the run() boundary so exactly as many periods execute per
        run as with scalar one-period-per-wake pacing (a wake landing
        exactly on the boundary still executes, hence the ``+ 1``).
        """
        if not self._batch_safe:
            return 1
        limit = self._kernel.run_limit_ticks
        if limit is None:
            return 1  # unbounded run: pace period-by-period
        avail = (limit - self._kernel.now_ticks) // self.period.ticks + 1
        # Never batch across a compaction boundary: compacting at the
        # exact same period counts as scalar mode keeps checkpoint
        # snapshots (sample buffers + offsets) bit-identical.
        avail = min(avail, self._next_compact - self.period_count)
        return max(1, min(self.batch, avail))

    def execute_period(self) -> None:
        """Run exactly one cluster period (one full static schedule)."""
        self.execute_periods(1)

    def execute_periods(self, n: int) -> None:
        """Run ``n`` cluster periods through the compiled schedule."""
        telemetry = self.telemetry
        if telemetry is not None:
            start = _time.perf_counter()
        for converter in self._de_inputs:
            converter.sample()
        base = self.period_count * self.period.ticks
        self.epoch_ticks = 0  # local time is measured from t=0
        if self._profile is None:
            for module, count, use_block in self._entries_for(n):
                if use_block:
                    module._activate_block(count)
                else:
                    for _ in range(count):
                        module._activate()
        else:
            self._execute_profiled(n)
        if telemetry is not None and self._de_outputs:
            self._m_sync_out.inc(
                sum(len(c._queue) for c in self._de_outputs))
        for converter in self._de_outputs:
            converter.flush(base)
        self.period_count += n
        if telemetry is not None:
            elapsed = _time.perf_counter() - start
            self._m_seconds.inc(elapsed)
            self._m_periods.inc(n)
            self._m_activations.inc(n * len(self.schedule))
            self._m_batch.observe(n)
            if self._de_inputs:
                self._m_sync_in.inc(len(self._de_inputs))
            tracer = telemetry.tracer
            if tracer.enabled:
                tracer.complete(
                    "cluster.activate", start, elapsed,
                    track=f"tdf.{self.name}",
                    attrs={"moc": "tdf", "periods": n,
                           "t_ticks": base})
        # Amortized housekeeping: dropping consumed samples every period
        # would dominate the per-sample cost; compacting every
        # ``compact_every`` periods keeps the buffers bounded at
        # negligible overhead.
        if self.period_count >= self._next_compact:
            self._compact()
            self._next_compact = self.compact_every * (
                self.period_count // self.compact_every + 1
            )

    def _execute_profiled(self, n: int) -> None:
        prof = self._profile
        for module, count, use_block in self._entries_for(n):
            name = module.full_name()
            start = _time.perf_counter()
            if use_block:
                module._activate_block(count)
            else:
                for _ in range(count):
                    module._activate()
            elapsed = _time.perf_counter() - start
            prof["module_seconds"][name] = (
                prof["module_seconds"].get(name, 0.0) + elapsed
            )
            prof["module_activations"][name] = (
                prof["module_activations"].get(name, 0) + count
            )
            if use_block:
                prof["block_activations"][name] = (
                    prof["block_activations"].get(name, 0) + count
                )
        prof["periods"] = prof.get("periods", 0) + n

    def enable_profiling(self) -> dict:
        """Turn on per-module wall-clock accounting; returns the dict."""
        if self._profile is None:
            self._profile = {
                "module_seconds": {},
                "module_activations": {},
                "block_activations": {},
                "periods": 0,
            }
        return self._profile

    def _compact(self) -> None:
        if self.telemetry is not None:
            for signal in self._signals:
                self._m_occupancy.observe(
                    signal.write_head - signal._offset)
        for signal in self._signals:
            if signal.readers:
                needed = min(r.next_needed() for r in signal.readers)
                signal.compact(needed)
            else:
                signal.compact(signal.write_head)

    # -- checkpoint support ------------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Picklable snapshot of the cluster's runtime state."""
        return {
            "name": self.name,
            "period_count": self.period_count,
            "signals": [signal.snapshot() for signal in self._signals],
            "modules": [
                {
                    "name": module.full_name(),
                    "activation_index": module._activation_index,
                    "activation_count": module.activation_count,
                    "extra": module.checkpoint_state(),
                }
                for module in self.modules
            ],
        }

    def restore_state(self, data: dict) -> None:
        """Reinstall a :meth:`checkpoint_state` snapshot.

        The receiving cluster must be freshly elaborated from the same
        model factory: signals and modules are matched positionally (the
        elaboration order is deterministic) with module names checked.
        """
        if (len(data["signals"]) != len(self._signals)
                or len(data["modules"]) != len(self.modules)):
            raise SynchronizationError(
                f"checkpoint does not match cluster {self.name!r} "
                "(different signal/module counts — was the model "
                "rebuilt from the same factory?)"
            )
        self.period_count = int(data["period_count"])
        self._next_compact = self.compact_every * (
            self.period_count // self.compact_every + 1
        )
        for signal, snap in zip(self._signals, data["signals"]):
            signal.restore(snap)
        for module, snap in zip(self.modules, data["modules"]):
            if module.full_name() != snap["name"]:
                raise SynchronizationError(
                    f"checkpoint module {snap['name']!r} does not match "
                    f"{module.full_name()!r} in cluster {self.name!r}"
                )
            module._activation_index = int(snap["activation_index"])
            module.activation_count = int(snap["activation_count"])
            module.restore_state(snap["extra"])
        self._skip_first_period = True
