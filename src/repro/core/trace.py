"""Waveform tracing.

Two recorders are provided:

* :class:`Trace` — an in-memory recorder sampling signals on change (for
  DE values) plus an explicit :meth:`sample` interface used by the AMS
  layers to record continuous waveforms at solver timepoints.
* :class:`VcdWriter` — writes the recorded DE traces in Value Change Dump
  format for external waveform viewers.
"""

from __future__ import annotations

from typing import Optional, TextIO

import numpy as np

from .kernel import Kernel
from .signal import Signal
from .time import FEMTO, SimTime


class TraceChannel:
    """Recorded (time, value) history of one named quantity."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[int] = []
        self.values: list = []

    def record(self, ticks: int, value) -> None:
        if self.times and self.times[-1] == ticks:
            self.values[-1] = value
            return
        self.times.append(ticks)
        self.values.append(value)

    def as_arrays(self):
        """Return (time_seconds, values) as NumPy arrays."""
        t = np.asarray(self.times, dtype=float) * FEMTO
        return t, np.asarray(self.values)

    def value_at(self, t: SimTime):
        """Most recent recorded value at or before ``t`` (DE semantics)."""
        idx = np.searchsorted(self.times, t.ticks, side="right") - 1
        if idx < 0:
            raise ValueError(f"no sample of {self.name!r} at or before {t}")
        return self.values[idx]

    def __len__(self) -> int:
        return len(self.times)


class Trace:
    """In-memory waveform recorder."""

    def __init__(self):
        self.channels: dict[str, TraceChannel] = {}
        self._watched: list[tuple[Signal, TraceChannel]] = []
        self._watched_signals: dict[str, int] = {}

    def channel(self, name: str) -> TraceChannel:
        if name not in self.channels:
            self.channels[name] = TraceChannel(name)
        return self.channels[name]

    def watch(self, signal: Signal, name: Optional[str] = None) -> TraceChannel:
        """Record every value change of a DE signal.

        The caller must invoke :meth:`attach` (done by the Simulator) so
        the recorder sees the kernel; value changes are captured via a
        per-signal method process installed at elaboration.

        Each channel name records exactly one signal: watching a
        *different* signal under an already-watched name raises
        ``ValueError`` (two signals silently interleaving into one
        channel made the merged waveform look like glitches); watching
        the same signal again returns the existing channel.
        """
        channel_name = name or signal.name
        owner = self._watched_signals.get(channel_name)
        if owner is not None:
            if owner == id(signal):
                return self.channels[channel_name]
            raise ValueError(
                f"channel {channel_name!r} already watches a different "
                "signal; pass an explicit name= to disambiguate"
            )
        chan = self.channel(channel_name)
        self._watched_signals[channel_name] = id(signal)
        self._watched.append((signal, chan))
        return chan

    def sample(self, name: str, ticks: int, value) -> None:
        """Record an explicit sample (used by AMS solvers)."""
        self.channel(name).record(ticks, value)

    def attach(self, kernel: Kernel) -> None:
        """Install change-capture processes; called at elaboration."""
        from .process import METHOD, Process

        for signal, chan in self._watched:
            chan.record(kernel.now_ticks, signal.read())

            def capture(signal=signal, chan=chan, kernel=kernel):
                chan.record(kernel.now_ticks, signal.read())

            proc = Process(
                f"trace.{chan.name}",
                METHOD,
                capture,
                [signal.default_event()],
                dont_initialize=True,
            )
            kernel.register_process(proc)

    def __getitem__(self, name: str) -> TraceChannel:
        return self.channels[name]

    def __contains__(self, name: str) -> bool:
        return name in self.channels


class VcdWriter:
    """Serialize a :class:`Trace` to VCD."""

    _ID_CHARS = "".join(chr(c) for c in range(33, 127))

    def __init__(self, trace: Trace, timescale: str = "1 fs"):
        self.trace = trace
        self.timescale = timescale

    def write(self, stream: TextIO) -> None:
        channels = list(self.trace.channels.values())
        ids = {c.name: self._ident(i) for i, c in enumerate(channels)}
        stream.write(f"$timescale {self.timescale} $end\n")
        stream.write("$scope module top $end\n")
        for chan in channels:
            kind, width = self._var_type(chan)
            safe = chan.name.replace(" ", "_")
            stream.write(f"$var {kind} {width} {ids[chan.name]} {safe} $end\n")
        stream.write("$upscope $end\n$enddefinitions $end\n")
        # Merge all change lists by time.
        merged: dict[int, list[tuple[str, object]]] = {}
        for chan in channels:
            for ticks, value in zip(chan.times, chan.values):
                merged.setdefault(ticks, []).append((ids[chan.name], value))
        for ticks in sorted(merged):
            stream.write(f"#{ticks}\n")
            for ident, value in merged[ticks]:
                stream.write(self._format_change(ident, value))

    def _ident(self, index: int) -> str:
        chars = self._ID_CHARS
        ident = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, len(chars))
            ident = chars[rem] + ident
        return ident

    @staticmethod
    def _var_type(chan: TraceChannel) -> tuple[str, int]:
        if chan.values and isinstance(chan.values[0], bool):
            return "wire", 1
        if chan.values and isinstance(chan.values[0], (int, np.integer)):
            return "integer", 32
        return "real", 64

    @staticmethod
    def _format_change(ident: str, value) -> str:
        if isinstance(value, bool):
            return f"{int(value)}{ident}\n"
        if isinstance(value, (int, np.integer)):
            return f"b{int(value) & 0xFFFFFFFF:b} {ident}\n"
        return f"r{float(value):.16g} {ident}\n"
