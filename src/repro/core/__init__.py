"""`repro.core` — the discrete-event simulation kernel.

This package is the Python equivalent of the SystemC core language the
paper extends: hierarchical modules, evaluate/update signals, events,
method and thread processes, a delta-cycle scheduler, clocks and tracing.
"""

from .clock import Clock
from .errors import (
    BindingError,
    ConvergenceError,
    ElaborationError,
    SchedulingError,
    SimulationError,
    SolverError,
    SynchronizationError,
)
from .events import Event
from .kernel import Kernel
from .module import Module
from .port import InOutPort, InPort, OutPort, Port
from .process import Process
from .signal import BitSignal, Signal
from .simulator import Simulator
from .time import FEMTO, TIME_UNITS, ZERO_TIME, SimTime, time
from .trace import Trace, TraceChannel, VcdWriter

__all__ = [
    "BindingError",
    "BitSignal",
    "Clock",
    "ConvergenceError",
    "ElaborationError",
    "Event",
    "FEMTO",
    "InOutPort",
    "InPort",
    "Kernel",
    "Module",
    "OutPort",
    "Port",
    "Process",
    "SchedulingError",
    "Signal",
    "SimTime",
    "SimulationError",
    "Simulator",
    "SolverError",
    "SynchronizationError",
    "TIME_UNITS",
    "Trace",
    "TraceChannel",
    "VcdWriter",
    "ZERO_TIME",
    "time",
]
