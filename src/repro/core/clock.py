"""Clock generator module."""

from __future__ import annotations

from typing import Optional

from .module import Module
from .signal import BitSignal
from .time import SimTime, ZERO_TIME


class Clock(Module):
    """A periodic boolean clock.

    Produces a :class:`~repro.core.signal.BitSignal` named ``signal``
    toggling with the given period and duty cycle.  The first posedge
    occurs at ``start_time`` (default: time zero).
    """

    def __init__(
        self,
        name: str,
        period: SimTime,
        parent: Optional[Module] = None,
        duty_cycle: float = 0.5,
        start_time: SimTime = ZERO_TIME,
        posedge_first: bool = True,
    ):
        super().__init__(name, parent)
        if period.ticks <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty_cycle < 1.0:
            raise ValueError("duty cycle must lie strictly between 0 and 1")
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_time = start_time
        self.posedge_first = posedge_first
        self.signal = BitSignal(f"{name}.signal", initial=not posedge_first)
        high = SimTime.from_ticks(round(period.ticks * duty_cycle))
        self._first_width = high if posedge_first else period - high
        self._second_width = period - self._first_width
        self.thread(self._generate, name="generate")

    def default_event(self):
        return self.signal.default_event()

    def posedge_event(self):
        return self.signal.posedge_event()

    def negedge_event(self):
        return self.signal.negedge_event()

    def read(self) -> bool:
        return self.signal.read()

    def _generate(self):
        if self.start_time.ticks > 0:
            yield self.start_time
        level = self.posedge_first
        while True:
            self.signal.write(level)
            yield self._first_width if level == self.posedge_first \
                else self._second_width
            level = not level
