"""Simulation driver: elaboration plus run control.

The :class:`Simulator` walks a module hierarchy, checks port bindings,
registers processes with a fresh :class:`~repro.core.kernel.Kernel`, runs
the AMS elaboration hooks (cluster building, solver setup — see
`repro.sync`), and then drives the scheduler.
"""

from __future__ import annotations

import contextlib
import time as _time
from typing import Optional

from .errors import ElaborationError, SimulationError
from .kernel import Kernel
from .module import Module
from .time import SimTime
from .trace import Trace


class Simulator:
    """Owns one kernel and one elaborated design."""

    def __init__(self, top: Module, trace: Optional[Trace] = None, *,
                 tdf_block: bool = True, tdf_batch: int = 16,
                 tdf_compact_every: int = 64, verify: str = "off",
                 observe=None):
        self.top = top
        self.trace = trace
        self.kernel = Kernel()
        self._elaborated = False
        #: Telemetry hub (:mod:`repro.observe`): ``observe`` accepts
        #: ``None``/``False`` (off), ``True``/``"on"`` (spans+metrics),
        #: ``"metrics"`` (registry only), ``"fine"`` (per-delta /
        #: per-advance spans) or a ready :class:`repro.observe.Telemetry`.
        if observe is None or observe is False:
            self.telemetry = None
        else:
            from ..observe import Telemetry

            self.telemetry = Telemetry.coerce(observe)
            self.kernel.install_telemetry(self.telemetry)
        if verify not in ("off", "warn", "error"):
            raise ValueError(
                f"verify must be 'off', 'warn', or 'error'; got "
                f"{verify!r}")
        #: Static-verification mode applied at elaboration: ``"error"``
        #: refuses to elaborate a model with verification errors,
        #: ``"warn"`` logs findings and continues, ``"off"`` skips the
        #: verifier entirely.
        self.verify_mode = verify
        #: The last pre-elaboration report (``verify != "off"`` only).
        self.verification_report = None
        self._stopped = False
        self._finalizers: list = []
        #: TDF execution tuning, read by TdfRegistry.finalize:
        #: ``tdf_block`` compiles cluster schedules into fused
        #: ``processing_block`` runs (False = scalar reference mode);
        #: ``tdf_batch`` caps how many cluster periods a DE-decoupled
        #: cluster may execute per kernel wake-up; ``tdf_compact_every``
        #: is the signal-buffer compaction interval in periods.
        self.tdf_block = tdf_block
        self.tdf_batch = tdf_batch
        self.tdf_compact_every = tdf_compact_every
        self._profiling = False
        #: set by run(checkpoint_every=...); reusable for postmortems.
        self.checkpoint_manager = None

    def __reduce__(self):
        # Campaign workers (repro.campaign) must build their own
        # simulator from a ``build(params)`` factory; an elaborated
        # kernel holds process closures and heap state that cannot
        # survive a pickle round-trip.
        raise SimulationError(
            "Simulator objects cannot be pickled; pass a factory "
            "function to the worker process and construct the "
            "Simulator there (see repro.campaign)"
        )

    def add_elaboration_finalizer(self, callback) -> None:
        """Register a callback run after process registration.

        The AMS layers use this to build dataflow clusters and set up
        continuous-time solvers once the whole hierarchy is known.
        """
        self._finalizers.append(callback)

    def _phase_span(self, name: str):
        """Elaboration-phase span, or a no-op when telemetry is off."""
        if self.telemetry is None:
            return contextlib.nullcontext()
        return self.telemetry.tracer.span(name, track="elaborate")

    def elaborate(self, verify: Optional[str] = None) -> None:
        if self._elaborated:
            return
        if self.telemetry is None:
            self._elaborate_inner(verify)
            return
        with self.telemetry.ambient():
            with self._phase_span("elaborate"):
                self._elaborate_inner(verify)

    def _elaborate_inner(self, verify: Optional[str] = None) -> None:
        mode = self.verify_mode if verify is None else verify
        if mode not in ("off", "warn", "error"):
            raise ValueError(
                f"verify must be 'off', 'warn', or 'error'; got "
                f"{mode!r}")
        if mode != "off":
            # Static pre-flight: catch composition errors (rates,
            # schedules, MNA structure, sync) before paying for any
            # kernel or solver setup.
            from ..verify import verify_model

            with self._phase_span("elaborate.verify"):
                report = verify_model(self.top)
            self.verification_report = report
            if mode == "error":
                report.raise_if_errors()
            elif not report.clean():
                import logging

                logger = logging.getLogger("repro.verify")
                for diagnostic in report:
                    level = (logging.ERROR
                             if diagnostic.severity == "error"
                             else logging.WARNING
                             if diagnostic.severity == "warning"
                             else logging.INFO)
                    logger.log(level, "%s", diagnostic.format())
        modules = list(self.top.walk())
        names = [m.full_name() for m in modules]
        if len(set(names)) != len(names):
            raise ElaborationError("duplicate module names in hierarchy")
        # AMS hook: modules that participate in dataflow clusters or own
        # equation systems expose ``ams_elaborate(simulator)``.
        with self._phase_span("elaborate.hierarchy"):
            for module in modules:
                hook = getattr(module, "ams_elaborate", None)
                if callable(hook):
                    hook(self)
            for module in modules:
                module.check_bindings()
        from .module import resolve_sensitivity

        with self._phase_span("elaborate.processes"):
            for module in modules:
                for process in module._processes:
                    resolve_sensitivity(process)
                    self.kernel.register_process(process)
        # Cluster building + solver setup (registered by the AMS layers).
        with self._phase_span("elaborate.finalize"):
            for callback in self._finalizers:
                callback(self)
        if self.trace is not None:
            self.trace.attach(self.kernel)
        with self._phase_span("elaborate.init_hooks"):
            for module in modules:
                module.end_of_elaboration()
            for module in modules:
                module.start_of_simulation()
        self._elaborated = True

    def run(self, duration: Optional[SimTime] = None, *,
            checkpoint_every: Optional[SimTime] = None,
            checkpoint_manager=None) -> SimTime:
        """Elaborate on first call, then run for ``duration``.

        Once :meth:`stop` has been called the simulator latches: a
        further ``run()`` raises :class:`SimulationError` instead of
        silently resuming the stopped kernel.  Call :meth:`reset` first
        to make the resumption explicit.

        With ``checkpoint_every`` the run is split into segments and a
        checkpoint (see :mod:`repro.resilience.checkpoint`) is saved
        after each; ``checkpoint_manager`` supplies storage (an
        in-memory :class:`~repro.resilience.checkpoint.CheckpointManager`
        is created when omitted and exposed as
        ``self.checkpoint_manager``).
        """
        if self._stopped:
            raise SimulationError(
                "Simulator.run() called after stop(); call reset() "
                "to explicitly resume the stopped simulation"
            )
        self.elaborate()
        telemetry = self.telemetry
        if telemetry is None:
            return self._run_inner(duration, checkpoint_every,
                                   checkpoint_manager)
        # Span the whole run segment; the ambient hub lets free
        # functions (homotopy ladders) report without a simulator ref.
        # ``moc.de.seconds`` is the run wall time minus what the TDF
        # clusters (which include embedded CT/ELN solves) accounted for.
        metrics = telemetry.metrics
        tdf_counter = metrics.counter("moc.tdf.seconds")
        tdf_before = tdf_counter.value
        attrs = {} if duration is None \
            else {"duration_ticks": duration.ticks}
        with telemetry.ambient(), \
                telemetry.tracer.span("simulate.run", track="kernel",
                                      **attrs):
            start = _time.perf_counter()
            try:
                return self._run_inner(duration, checkpoint_every,
                                       checkpoint_manager)
            finally:
                elapsed = _time.perf_counter() - start
                de_seconds = elapsed - (tdf_counter.value - tdf_before)
                metrics.counter("moc.de.seconds").inc(
                    max(de_seconds, 0.0))
                metrics.counter("simulate.run.seconds").inc(elapsed)

    def _run_inner(self, duration, checkpoint_every,
                   checkpoint_manager) -> SimTime:
        if checkpoint_every is None:
            return self.kernel.run(duration)
        if duration is None:
            raise SimulationError(
                "checkpoint_every requires a finite run duration"
            )
        if checkpoint_every.ticks <= 0:
            raise SimulationError("checkpoint_every must be positive")
        if checkpoint_manager is None:
            from ..resilience.checkpoint import CheckpointManager

            checkpoint_manager = CheckpointManager()
        self.checkpoint_manager = checkpoint_manager
        end_ticks = self.kernel.now_ticks + duration.ticks
        while self.kernel.now_ticks < end_ticks and not self._stopped:
            chunk = min(checkpoint_every.ticks,
                        end_ticks - self.kernel.now_ticks)
            self.kernel.run(SimTime.from_ticks(chunk))
            checkpoint_manager.save(self.capture_checkpoint(),
                                    self.kernel.now.to_seconds())
        return self.kernel.now

    # -- checkpoint/restart (see repro.resilience.checkpoint) ---------------

    def capture_checkpoint(self) -> dict:
        """Picklable snapshot of the kernel clock and all TDF clusters."""
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        return {
            "now_ticks": self.kernel.now_ticks,
            "clusters": [c.checkpoint_state() for c in clusters],
        }

    def restore_checkpoint(self, payload: dict) -> SimTime:
        """Resume from a :meth:`capture_checkpoint` payload.

        Must be called on a *freshly built* simulator (same model
        factory, no prior :meth:`run`): the design is elaborated, the
        checkpointed cluster state is reinstalled, and the kernel clock
        is moved to the checkpoint time.  A subsequent ``run(d)``
        continues the simulation for ``d`` more.
        """
        if self.kernel._initialized:
            raise SimulationError(
                "restore_checkpoint requires a freshly built simulator "
                "(restore before the first run)"
            )
        self.elaborate()
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        saved = payload["clusters"]
        if len(saved) != len(clusters):
            raise SimulationError(
                "checkpoint does not match the elaborated design "
                f"({len(saved)} saved clusters, {len(clusters)} built)"
            )
        for cluster, data in zip(clusters, saved):
            cluster.restore_state(data)
        self.kernel.now_ticks = int(payload["now_ticks"])
        return self.kernel.now

    # -- profiling -----------------------------------------------------------

    def enable_profiling(self) -> None:
        """Record per-module wall-clock time inside every TDF cluster.

        Call before or after elaboration but before :meth:`run`;
        results come back through :meth:`profile`.
        """
        self._profiling = True
        registry = getattr(self, "_tdf_registry", None)
        if registry is not None:
            for cluster in registry.clusters:
                cluster.enable_profiling()

    def profile(self) -> dict:
        """Per-cluster/per-module time accounting (see
        :meth:`enable_profiling`).

        Returns ``{"clusters": {name: {"periods", "module_seconds",
        "module_activations", "block_activations", "total_seconds"}},
        "total_seconds": float}`` — wall-clock seconds spent inside
        module activations, keyed by module ``full_name``.
        """
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        report: dict = {"clusters": {}, "total_seconds": 0.0}
        for cluster in clusters:
            prof = cluster._profile
            if prof is None:
                continue
            total = sum(prof["module_seconds"].values())
            report["clusters"][cluster.name] = {
                "periods": prof["periods"],
                "module_seconds": dict(prof["module_seconds"]),
                "module_activations": dict(prof["module_activations"]),
                "block_activations": dict(prof["block_activations"]),
                "total_seconds": total,
            }
            report["total_seconds"] += total
        return report

    # -- telemetry (see repro.observe) ---------------------------------------

    def metrics_snapshot(self) -> dict:
        """Flat ``{metric_key: number}`` harvest of the engine's state.

        Works with or without an installed telemetry hub: kernel
        counters, TDF cluster/module activation counts, embedded-solver
        step statistics, resilience tier counts (zero-defaulted so the
        keys are always present) and health-guard totals are read from
        the live objects; live registry metrics (per-MoC wall time,
        histograms as ``.count/.sum/.p95``) are merged in when
        telemetry is enabled.  Campaign runs store this mapping on each
        :class:`~repro.campaign.records.RunRecord`.
        """
        snap: dict = {
            "kernel.delta_cycles": float(self.kernel.delta_count),
            "kernel.activations": float(self.kernel.activation_count),
            "kernel.now_ticks": float(self.kernel.now_ticks),
        }
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        total_periods = 0
        total_activations = 0
        for cluster in clusters:
            total_periods += cluster.period_count
            for module in cluster.modules:
                total_activations += module.activation_count
            profile = cluster._profile
            if profile:
                # enable_profiling() shim: fold its per-module wall
                # clock into the unified dump.
                for name, seconds in profile["module_seconds"].items():
                    snap[f"tdf.module_seconds[module={name}]"] = \
                        float(seconds)
        snap["tdf.periods"] = float(total_periods)
        snap["tdf.activations"] = float(total_activations)

        from ..sync.ct_modules import CtTdfModule

        tiers = {"primary": 0.0, "halved": 0.0, "bdf": 0.0}
        steps = rejected = iterations = 0.0
        checked = violations = skipped = 0.0
        factorizations = refactorizations = expm_hits = 0.0
        for module in self.top.walk():
            if not isinstance(module, CtTdfModule):
                continue
            solver = module._solver
            if solver is None:
                continue
            name = module.full_name()
            skipped += module.skipped_activations
            primary = getattr(solver, "primary", solver)
            count = getattr(primary, "step_count", None)
            if count is not None:
                steps += count
                snap[f"solver.steps[module={name}]"] = float(count)
            count = getattr(primary, "rejected_count", None)
            if count is not None:
                rejected += count
                snap[f"solver.rejected[module={name}]"] = float(count)
            count = getattr(primary, "segment_count", None)
            if count is not None:
                snap[f"solver.segments[module={name}]"] = float(count)
            for stepper_name in ("_be", "_trap"):
                stepper = getattr(primary, stepper_name, None)
                iterations += getattr(stepper, "newton_iterations", 0)
            stepper = getattr(primary, "_stepper", None)
            count = getattr(stepper, "factorizations", None)
            if count is not None:
                factorizations += count
                snap[f"solver.factorizations[module={name}]"] = \
                    float(count)
                refactorizations += stepper.refactorizations
                snap[f"solver.refactorizations[module={name}]"] = \
                    float(stepper.refactorizations)
            count = getattr(stepper, "expm_cache_hits", None)
            if count is not None:
                expm_hits += count
                snap[f"solver.expm_cache_hits[module={name}]"] = \
                    float(count)
            for tier, count in getattr(solver, "tier_counts",
                                       {}).items():
                tiers[tier] = tiers.get(tier, 0.0) + count
            monitor = getattr(solver, "monitor", None)
            if monitor is not None:
                checked += monitor.checked_steps
                violations += monitor.violations
        snap["solver.steps"] = steps
        snap["solver.rejected"] = rejected
        snap["solver.newton_iterations"] = iterations
        snap["solver.factorizations"] = factorizations
        snap["solver.refactorizations"] = refactorizations
        snap["solver.expm_cache_hits"] = expm_hits
        snap["ct.skipped_activations"] = skipped
        for tier, count in tiers.items():
            snap[f"resilience.tier.{tier}"] = float(count)
        snap["health.checked_steps"] = checked
        snap["health.violations"] = violations
        if self.telemetry is not None:
            snap.update(self.telemetry.metrics.scalars())
        return snap

    def export_telemetry(self, directory) -> dict:
        """Write ``trace.json`` / ``trace.jsonl`` / ``metrics.json``
        under ``directory`` (requires ``observe=`` at construction);
        the metrics dump includes :meth:`metrics_snapshot`."""
        if self.telemetry is None:
            raise SimulationError(
                "export_telemetry requires Simulator(observe=...)"
            )
        return self.telemetry.export(
            directory, extra_metrics=self.metrics_snapshot())

    @property
    def now(self) -> SimTime:
        return self.kernel.now

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has latched this simulator."""
        return self._stopped

    def stop(self) -> None:
        """Halt the kernel and latch the simulator (see :meth:`run`)."""
        self._stopped = True
        self.kernel.stop()

    def reset(self) -> None:
        """Clear the stop latch so :meth:`run` may resume.

        Module and signal state are preserved — this resumes the
        simulation from where :meth:`stop` halted it; it does not
        re-elaborate the design.
        """
        self._stopped = False
