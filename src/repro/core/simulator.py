"""Simulation driver: elaboration plus run control.

The :class:`Simulator` walks a module hierarchy, checks port bindings,
registers processes with a fresh :class:`~repro.core.kernel.Kernel`, runs
the AMS elaboration hooks (cluster building, solver setup — see
`repro.sync`), and then drives the scheduler.
"""

from __future__ import annotations

from typing import Optional

from .errors import ElaborationError, SimulationError
from .kernel import Kernel
from .module import Module
from .time import SimTime
from .trace import Trace


class Simulator:
    """Owns one kernel and one elaborated design."""

    def __init__(self, top: Module, trace: Optional[Trace] = None, *,
                 tdf_block: bool = True, tdf_batch: int = 16,
                 tdf_compact_every: int = 64, verify: str = "off"):
        self.top = top
        self.trace = trace
        self.kernel = Kernel()
        self._elaborated = False
        if verify not in ("off", "warn", "error"):
            raise ValueError(
                f"verify must be 'off', 'warn', or 'error'; got "
                f"{verify!r}")
        #: Static-verification mode applied at elaboration: ``"error"``
        #: refuses to elaborate a model with verification errors,
        #: ``"warn"`` logs findings and continues, ``"off"`` skips the
        #: verifier entirely.
        self.verify_mode = verify
        #: The last pre-elaboration report (``verify != "off"`` only).
        self.verification_report = None
        self._stopped = False
        self._finalizers: list = []
        #: TDF execution tuning, read by TdfRegistry.finalize:
        #: ``tdf_block`` compiles cluster schedules into fused
        #: ``processing_block`` runs (False = scalar reference mode);
        #: ``tdf_batch`` caps how many cluster periods a DE-decoupled
        #: cluster may execute per kernel wake-up; ``tdf_compact_every``
        #: is the signal-buffer compaction interval in periods.
        self.tdf_block = tdf_block
        self.tdf_batch = tdf_batch
        self.tdf_compact_every = tdf_compact_every
        self._profiling = False
        #: set by run(checkpoint_every=...); reusable for postmortems.
        self.checkpoint_manager = None

    def __reduce__(self):
        # Campaign workers (repro.campaign) must build their own
        # simulator from a ``build(params)`` factory; an elaborated
        # kernel holds process closures and heap state that cannot
        # survive a pickle round-trip.
        raise SimulationError(
            "Simulator objects cannot be pickled; pass a factory "
            "function to the worker process and construct the "
            "Simulator there (see repro.campaign)"
        )

    def add_elaboration_finalizer(self, callback) -> None:
        """Register a callback run after process registration.

        The AMS layers use this to build dataflow clusters and set up
        continuous-time solvers once the whole hierarchy is known.
        """
        self._finalizers.append(callback)

    def elaborate(self, verify: Optional[str] = None) -> None:
        if self._elaborated:
            return
        mode = self.verify_mode if verify is None else verify
        if mode not in ("off", "warn", "error"):
            raise ValueError(
                f"verify must be 'off', 'warn', or 'error'; got "
                f"{mode!r}")
        if mode != "off":
            # Static pre-flight: catch composition errors (rates,
            # schedules, MNA structure, sync) before paying for any
            # kernel or solver setup.
            from ..verify import verify_model

            report = verify_model(self.top)
            self.verification_report = report
            if mode == "error":
                report.raise_if_errors()
            elif not report.clean():
                import logging

                logger = logging.getLogger("repro.verify")
                for diagnostic in report:
                    level = (logging.ERROR
                             if diagnostic.severity == "error"
                             else logging.WARNING
                             if diagnostic.severity == "warning"
                             else logging.INFO)
                    logger.log(level, "%s", diagnostic.format())
        modules = list(self.top.walk())
        names = [m.full_name() for m in modules]
        if len(set(names)) != len(names):
            raise ElaborationError("duplicate module names in hierarchy")
        # AMS hook: modules that participate in dataflow clusters or own
        # equation systems expose ``ams_elaborate(simulator)``.
        for module in modules:
            hook = getattr(module, "ams_elaborate", None)
            if callable(hook):
                hook(self)
        for module in modules:
            module.check_bindings()
        from .module import resolve_sensitivity

        for module in modules:
            for process in module._processes:
                resolve_sensitivity(process)
                self.kernel.register_process(process)
        for callback in self._finalizers:
            callback(self)
        if self.trace is not None:
            self.trace.attach(self.kernel)
        for module in modules:
            module.end_of_elaboration()
        for module in modules:
            module.start_of_simulation()
        self._elaborated = True

    def run(self, duration: Optional[SimTime] = None, *,
            checkpoint_every: Optional[SimTime] = None,
            checkpoint_manager=None) -> SimTime:
        """Elaborate on first call, then run for ``duration``.

        Once :meth:`stop` has been called the simulator latches: a
        further ``run()`` raises :class:`SimulationError` instead of
        silently resuming the stopped kernel.  Call :meth:`reset` first
        to make the resumption explicit.

        With ``checkpoint_every`` the run is split into segments and a
        checkpoint (see :mod:`repro.resilience.checkpoint`) is saved
        after each; ``checkpoint_manager`` supplies storage (an
        in-memory :class:`~repro.resilience.checkpoint.CheckpointManager`
        is created when omitted and exposed as
        ``self.checkpoint_manager``).
        """
        if self._stopped:
            raise SimulationError(
                "Simulator.run() called after stop(); call reset() "
                "to explicitly resume the stopped simulation"
            )
        self.elaborate()
        if checkpoint_every is None:
            return self.kernel.run(duration)
        if duration is None:
            raise SimulationError(
                "checkpoint_every requires a finite run duration"
            )
        if checkpoint_every.ticks <= 0:
            raise SimulationError("checkpoint_every must be positive")
        if checkpoint_manager is None:
            from ..resilience.checkpoint import CheckpointManager

            checkpoint_manager = CheckpointManager()
        self.checkpoint_manager = checkpoint_manager
        end_ticks = self.kernel.now_ticks + duration.ticks
        while self.kernel.now_ticks < end_ticks and not self._stopped:
            chunk = min(checkpoint_every.ticks,
                        end_ticks - self.kernel.now_ticks)
            self.kernel.run(SimTime.from_ticks(chunk))
            checkpoint_manager.save(self.capture_checkpoint(),
                                    self.kernel.now.to_seconds())
        return self.kernel.now

    # -- checkpoint/restart (see repro.resilience.checkpoint) ---------------

    def capture_checkpoint(self) -> dict:
        """Picklable snapshot of the kernel clock and all TDF clusters."""
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        return {
            "now_ticks": self.kernel.now_ticks,
            "clusters": [c.checkpoint_state() for c in clusters],
        }

    def restore_checkpoint(self, payload: dict) -> SimTime:
        """Resume from a :meth:`capture_checkpoint` payload.

        Must be called on a *freshly built* simulator (same model
        factory, no prior :meth:`run`): the design is elaborated, the
        checkpointed cluster state is reinstalled, and the kernel clock
        is moved to the checkpoint time.  A subsequent ``run(d)``
        continues the simulation for ``d`` more.
        """
        if self.kernel._initialized:
            raise SimulationError(
                "restore_checkpoint requires a freshly built simulator "
                "(restore before the first run)"
            )
        self.elaborate()
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        saved = payload["clusters"]
        if len(saved) != len(clusters):
            raise SimulationError(
                "checkpoint does not match the elaborated design "
                f"({len(saved)} saved clusters, {len(clusters)} built)"
            )
        for cluster, data in zip(clusters, saved):
            cluster.restore_state(data)
        self.kernel.now_ticks = int(payload["now_ticks"])
        return self.kernel.now

    # -- profiling -----------------------------------------------------------

    def enable_profiling(self) -> None:
        """Record per-module wall-clock time inside every TDF cluster.

        Call before or after elaboration but before :meth:`run`;
        results come back through :meth:`profile`.
        """
        self._profiling = True
        registry = getattr(self, "_tdf_registry", None)
        if registry is not None:
            for cluster in registry.clusters:
                cluster.enable_profiling()

    def profile(self) -> dict:
        """Per-cluster/per-module time accounting (see
        :meth:`enable_profiling`).

        Returns ``{"clusters": {name: {"periods", "module_seconds",
        "module_activations", "block_activations", "total_seconds"}},
        "total_seconds": float}`` — wall-clock seconds spent inside
        module activations, keyed by module ``full_name``.
        """
        registry = getattr(self, "_tdf_registry", None)
        clusters = registry.clusters if registry is not None else []
        report: dict = {"clusters": {}, "total_seconds": 0.0}
        for cluster in clusters:
            prof = cluster._profile
            if prof is None:
                continue
            total = sum(prof["module_seconds"].values())
            report["clusters"][cluster.name] = {
                "periods": prof["periods"],
                "module_seconds": dict(prof["module_seconds"]),
                "module_activations": dict(prof["module_activations"]),
                "block_activations": dict(prof["block_activations"]),
                "total_seconds": total,
            }
            report["total_seconds"] += total
        return report

    @property
    def now(self) -> SimTime:
        return self.kernel.now

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has latched this simulator."""
        return self._stopped

    def stop(self) -> None:
        """Halt the kernel and latch the simulator (see :meth:`run`)."""
        self._stopped = True
        self.kernel.stop()

    def reset(self) -> None:
        """Clear the stop latch so :meth:`run` may resume.

        Module and signal state are preserved — this resumes the
        simulation from where :meth:`stop` halted it; it does not
        re-elaborate the design.
        """
        self._stopped = False
