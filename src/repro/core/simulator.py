"""Simulation driver: elaboration plus run control.

The :class:`Simulator` walks a module hierarchy, checks port bindings,
registers processes with a fresh :class:`~repro.core.kernel.Kernel`, runs
the AMS elaboration hooks (cluster building, solver setup — see
`repro.sync`), and then drives the scheduler.
"""

from __future__ import annotations

from typing import Optional

from .errors import ElaborationError, SimulationError
from .kernel import Kernel
from .module import Module
from .time import SimTime
from .trace import Trace


class Simulator:
    """Owns one kernel and one elaborated design."""

    def __init__(self, top: Module, trace: Optional[Trace] = None):
        self.top = top
        self.trace = trace
        self.kernel = Kernel()
        self._elaborated = False
        self._stopped = False
        self._finalizers: list = []

    def __reduce__(self):
        # Campaign workers (repro.campaign) must build their own
        # simulator from a ``build(params)`` factory; an elaborated
        # kernel holds process closures and heap state that cannot
        # survive a pickle round-trip.
        raise SimulationError(
            "Simulator objects cannot be pickled; pass a factory "
            "function to the worker process and construct the "
            "Simulator there (see repro.campaign)"
        )

    def add_elaboration_finalizer(self, callback) -> None:
        """Register a callback run after process registration.

        The AMS layers use this to build dataflow clusters and set up
        continuous-time solvers once the whole hierarchy is known.
        """
        self._finalizers.append(callback)

    def elaborate(self) -> None:
        if self._elaborated:
            return
        modules = list(self.top.walk())
        names = [m.full_name() for m in modules]
        if len(set(names)) != len(names):
            raise ElaborationError("duplicate module names in hierarchy")
        # AMS hook: modules that participate in dataflow clusters or own
        # equation systems expose ``ams_elaborate(simulator)``.
        for module in modules:
            hook = getattr(module, "ams_elaborate", None)
            if callable(hook):
                hook(self)
        for module in modules:
            module.check_bindings()
        from .module import resolve_sensitivity

        for module in modules:
            for process in module._processes:
                resolve_sensitivity(process)
                self.kernel.register_process(process)
        for callback in self._finalizers:
            callback(self)
        if self.trace is not None:
            self.trace.attach(self.kernel)
        for module in modules:
            module.end_of_elaboration()
        for module in modules:
            module.start_of_simulation()
        self._elaborated = True

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        """Elaborate on first call, then run for ``duration``.

        Once :meth:`stop` has been called the simulator latches: a
        further ``run()`` raises :class:`SimulationError` instead of
        silently resuming the stopped kernel.  Call :meth:`reset` first
        to make the resumption explicit.
        """
        if self._stopped:
            raise SimulationError(
                "Simulator.run() called after stop(); call reset() "
                "to explicitly resume the stopped simulation"
            )
        self.elaborate()
        return self.kernel.run(duration)

    @property
    def now(self) -> SimTime:
        return self.kernel.now

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` has latched this simulator."""
        return self._stopped

    def stop(self) -> None:
        """Halt the kernel and latch the simulator (see :meth:`run`)."""
        self._stopped = True
        self.kernel.stop()

    def reset(self) -> None:
        """Clear the stop latch so :meth:`run` may resume.

        Module and signal state are preserved — this resumes the
        simulation from where :meth:`stop` halted it; it does not
        re-elaborate the design.
        """
        self._stopped = False
