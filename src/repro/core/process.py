"""Simulation processes.

Two process kinds mirror SystemC:

* **method processes** — a plain callable invoked from the beginning on
  every trigger; static sensitivity only.
* **thread processes** — a generator resumed on every trigger.  The values
  a thread yields are its dynamic wait conditions: a :class:`SimTime`
  (wait for a duration), an :class:`Event`, or a tuple of events (wait for
  any of them).
"""

from __future__ import annotations

import inspect
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .errors import SimulationError
from .events import Event
from .time import SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel

METHOD = "method"
THREAD = "thread"


class Process:
    """A schedulable unit of behaviour owned by a module."""

    __slots__ = (
        "name",
        "kind",
        "func",
        "static_sensitivity",
        "dont_initialize",
        "_generator",
        "_terminated",
        "_waiting_events",
        "_timer_handle",
        "_queued",
        "last_trigger",
        "terminated_event",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        func: Callable,
        sensitivity: Sequence[Event] = (),
        dont_initialize: bool = False,
    ):
        if kind not in (METHOD, THREAD):
            raise ValueError(f"unknown process kind {kind!r}")
        self.name = name
        self.kind = kind
        self.func = func
        self.static_sensitivity = list(sensitivity)
        self.dont_initialize = dont_initialize
        self._generator = None
        self._terminated = False
        self._waiting_events: list[Event] = []
        self._timer_handle = None
        self._queued = False
        #: The event that most recently made this process runnable.
        self.last_trigger: Optional[Event] = None
        self.terminated_event = Event(f"{name}.terminated")

    # -- state ------------------------------------------------------------

    @property
    def terminated(self) -> bool:
        return self._terminated

    def clear_dynamic_waits(self) -> None:
        """Drop all dynamic wait registrations (called when one fires)."""
        for event in self._waiting_events:
            event.remove_waiter(self)
        self._waiting_events.clear()
        if self._timer_handle is not None:
            self._timer_handle.cancelled = True
            self._timer_handle = None

    # -- execution (kernel-internal) ---------------------------------------

    def _run(self, kernel: "Kernel") -> None:
        if self._terminated:
            return
        if self.kind == METHOD:
            self.func()
            return
        self._resume_thread(kernel)

    def _resume_thread(self, kernel: "Kernel") -> None:
        if self._generator is None:
            result = self.func()
            if not inspect.isgenerator(result):
                # A thread body with no yields: runs once to completion.
                self._finish(kernel)
                return
            self._generator = result
        try:
            wait_request = next(self._generator)
        except StopIteration:
            self._finish(kernel)
            return
        self._register_wait(kernel, wait_request)

    def _register_wait(self, kernel: "Kernel", request) -> None:
        if isinstance(request, SimTime):
            self._timer_handle = kernel.schedule_process_wake(self, request)
            return
        if isinstance(request, Event):
            request._attach_kernel(kernel)
            request.add_waiter(self)
            self._waiting_events.append(request)
            return
        if isinstance(request, Iterable):
            events = list(request)
            if not events or not all(isinstance(e, Event) for e in events):
                raise SimulationError(
                    f"process {self.name!r} yielded an invalid wait list"
                )
            for event in events:
                event._attach_kernel(kernel)
                event.add_waiter(self)
                self._waiting_events.append(event)
            return
        raise SimulationError(
            f"process {self.name!r} yielded invalid wait condition "
            f"{request!r}; expected SimTime, Event, or iterable of Events"
        )

    def _finish(self, kernel: "Kernel") -> None:
        self._terminated = True
        self._generator = None
        self.terminated_event._attach_kernel(kernel)
        self.terminated_event.notify()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Process({self.name!r}, {self.kind})"
