"""Simulation time.

Time is represented as an integer count of femtoseconds, mirroring the
SystemC notion of a fixed minimum resolvable time.  Integer arithmetic keeps
the discrete-event kernel exact: two notifications scheduled for the same
instant compare equal, which floating-point time cannot guarantee.
"""

from __future__ import annotations

import math
from functools import total_ordering

#: Femtoseconds per unit, for every accepted unit string.
TIME_UNITS = {
    "fs": 1,
    "ps": 10**3,
    "ns": 10**6,
    "us": 10**9,
    "ms": 10**12,
    "s": 10**15,
}

#: Seconds represented by one femtosecond tick.
FEMTO = 1e-15


@total_ordering
class SimTime:
    """A point in (or duration of) simulation time.

    Internally an integer number of femtoseconds.  Construct from a value
    and unit (``SimTime(5, "ns")``), from seconds (:meth:`from_seconds`),
    or from raw ticks (:meth:`from_ticks`).
    """

    __slots__ = ("ticks",)

    def __init__(self, value: float = 0, unit: str = "s"):
        if unit not in TIME_UNITS:
            raise ValueError(
                f"unknown time unit {unit!r}; expected one of {sorted(TIME_UNITS)}"
            )
        scaled = value * TIME_UNITS[unit]
        if isinstance(scaled, float) and not math.isfinite(scaled):
            raise ValueError(f"non-finite time value: {value!r} {unit}")
        self.ticks = int(round(scaled))

    @classmethod
    def from_ticks(cls, ticks: int) -> "SimTime":
        t = cls.__new__(cls)
        t.ticks = int(ticks)
        return t

    @classmethod
    def from_seconds(cls, seconds: float) -> "SimTime":
        return cls(seconds, "s")

    def to_seconds(self) -> float:
        return self.ticks * FEMTO

    def __add__(self, other: "SimTime") -> "SimTime":
        return SimTime.from_ticks(self.ticks + _ticks_of(other))

    __radd__ = __add__

    def __sub__(self, other: "SimTime") -> "SimTime":
        return SimTime.from_ticks(self.ticks - _ticks_of(other))

    def __mul__(self, factor: int) -> "SimTime":
        return SimTime.from_ticks(self.ticks * factor)

    __rmul__ = __mul__

    def __floordiv__(self, other):
        if isinstance(other, SimTime):
            return self.ticks // other.ticks
        return SimTime.from_ticks(self.ticks // other)

    def __mod__(self, other: "SimTime") -> "SimTime":
        return SimTime.from_ticks(self.ticks % _ticks_of(other))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SimTime):
            return NotImplemented
        return self.ticks == other.ticks

    def __lt__(self, other: "SimTime") -> bool:
        return self.ticks < _ticks_of(other)

    def __hash__(self) -> int:
        return hash(self.ticks)

    def __bool__(self) -> bool:
        return self.ticks != 0

    def __repr__(self) -> str:
        return f"SimTime({self})"

    def __str__(self) -> str:
        for unit in ("s", "ms", "us", "ns", "ps"):
            per = TIME_UNITS[unit]
            if self.ticks and self.ticks % per == 0:
                return f"{self.ticks // per} {unit}"
        return f"{self.ticks} fs"


#: The zero time constant.
ZERO_TIME = SimTime.from_ticks(0)


def _ticks_of(t) -> int:
    if isinstance(t, SimTime):
        return t.ticks
    raise TypeError(f"expected SimTime, got {type(t).__name__}")


def time(value: float, unit: str = "s") -> SimTime:
    """Convenience constructor: ``time(5, 'ns')``."""
    return SimTime(value, unit)
