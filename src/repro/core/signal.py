"""Primitive channels: signals with evaluate/update semantics.

A write to a :class:`Signal` does not take effect until the update phase of
the current delta cycle, so every process reading the signal within one
evaluation phase observes the same value — the SystemC determinism rule.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar

from .events import Event
from .kernel import Kernel

T = TypeVar("T")


class Signal(Generic[T]):
    """A single-driver signal carrying a value of any equality-comparable type."""

    def __init__(self, name: str = "signal", initial: T = 0):
        self.name = name
        self._current: T = initial
        self._next: T = initial
        self._update_requested = False
        #: the kernel the pending update was queued on; a write seen by
        #: a *different* kernel (a fresh Simulator after an old one)
        #: must re-queue rather than trust the stale flag.
        self._requested_kernel = None
        self._changed_event = Event(f"{name}.value_changed")
        #: Delta count at which the value last changed (for ``event()``).
        self._change_delta = -1
        self._change_ticks = -1

    def set_initial(self, value: T) -> None:
        """Assign the pre-simulation value directly (no update phase)."""
        self._current = value
        self._next = value

    # -- access -------------------------------------------------------------

    def read(self) -> T:
        return self._current

    @property
    def value(self) -> T:
        return self._current

    def write(self, value: T) -> None:
        self._next = value
        kernel = Kernel.current()
        if kernel is None:
            # Pre-simulation write: apply directly (initialization value).
            self._current = value
            return
        if not self._update_requested or self._requested_kernel is not kernel:
            self._update_requested = True
            self._requested_kernel = kernel
            kernel.request_update(self)

    def default_event(self) -> Event:
        return self._changed_event

    def value_changed_event(self) -> Event:
        return self._changed_event

    def event(self) -> bool:
        """True if the signal changed value in the immediately preceding
        update phase at the current time."""
        kernel = Kernel.current()
        if kernel is None:
            return False
        return self._change_ticks == kernel.now_ticks and \
            self._change_delta == kernel.delta_count

    # -- kernel interface -----------------------------------------------------

    def _update(self, kernel: Kernel) -> None:
        self._update_requested = False
        if self._next != self._current:
            self._current = self._next
            self._change_delta = kernel.delta_count + 1
            self._change_ticks = kernel.now_ticks
            self._changed_event._attach_kernel(kernel)
            kernel.schedule_delta(self._changed_event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, value={self._current!r})"


class BitSignal(Signal[bool]):
    """A boolean signal with positive/negative edge events."""

    def __init__(self, name: str = "bit", initial: bool = False):
        super().__init__(name, bool(initial))
        self._posedge = Event(f"{name}.posedge")
        self._negedge = Event(f"{name}.negedge")

    def posedge_event(self) -> Event:
        return self._posedge

    def negedge_event(self) -> Event:
        return self._negedge

    def write(self, value) -> None:
        super().write(bool(value))

    def _update(self, kernel: Kernel) -> None:
        old = self._current
        super()._update(kernel)
        if self._current != old:
            edge = self._posedge if self._current else self._negedge
            edge._attach_kernel(kernel)
            kernel.schedule_delta(edge)
