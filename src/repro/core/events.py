"""Events: the primitive synchronization objects of the DE kernel.

An event may be notified immediately (processes run in the current
evaluation phase), as a delta notification (processes run in the next delta
cycle), or at a future simulation time.  Following the SystemC rule, an
event carries at most one pending notification and an earlier notification
overrides a later one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .time import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .kernel import Kernel
    from .process import Process

#: Sentinel for a pending delta notification.
_DELTA = "delta"


class Event:
    """A notifiable synchronization point.

    Processes become sensitive to an event either statically (listed in
    their sensitivity at registration) or dynamically (a thread process
    yields the event as a wait condition).
    """

    __slots__ = (
        "name",
        "_static_sensitive",
        "_dynamic_waiters",
        "_pending",
        "_timed_handle",
        "_kernel",
    )

    def __init__(self, name: str = ""):
        self.name = name
        self._static_sensitive: list["Process"] = []
        self._dynamic_waiters: list["Process"] = []
        #: None, the _DELTA sentinel, or an int tick count of a timed notify.
        self._pending = None
        self._timed_handle = None
        self._kernel: Optional["Kernel"] = None

    # -- wiring -----------------------------------------------------------

    def _attach_kernel(self, kernel: "Kernel") -> None:
        self._kernel = kernel

    def _resolve_kernel(self) -> "Kernel":
        if self._kernel is not None:
            return self._kernel
        from .kernel import Kernel

        kernel = Kernel.current()
        if kernel is None:
            raise RuntimeError(
                f"event {self.name!r} notified with no active kernel"
            )
        self._kernel = kernel
        return kernel

    def add_static(self, process: "Process") -> None:
        if process not in self._static_sensitive:
            self._static_sensitive.append(process)

    def add_waiter(self, process: "Process") -> None:
        if process not in self._dynamic_waiters:
            self._dynamic_waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        if process in self._dynamic_waiters:
            self._dynamic_waiters.remove(process)

    # -- notification -----------------------------------------------------

    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` is a delta notification; ``notify(t)`` with ``t`` zero
        is also a delta notification; ``notify(t)`` with positive ``t``
        schedules a timed notification.  An earlier pending notification
        wins over a later request.
        """
        kernel = self._resolve_kernel()
        if delay is None or delay == ZERO_TIME:
            self._request_delta(kernel)
            return
        target = kernel.now_ticks + delay.ticks
        if self._pending == _DELTA:
            return  # delta is earlier than any timed notification
        if isinstance(self._pending, int) and self._pending <= target:
            return  # an earlier timed notification is already pending
        self._cancel_timed(kernel)
        self._pending = target
        self._timed_handle = kernel.schedule_event(self, target)

    def notify_immediate(self) -> None:
        """Trigger sensitive processes in the current evaluation phase."""
        kernel = self._resolve_kernel()
        kernel.trigger_event_now(self)

    def cancel(self) -> None:
        """Cancel any pending (delta or timed) notification."""
        if self._kernel is None:
            self._pending = None
            return
        if self._pending == _DELTA:
            self._kernel.cancel_delta(self)
        else:
            self._cancel_timed(self._kernel)
        self._pending = None

    def _request_delta(self, kernel: "Kernel") -> None:
        if self._pending == _DELTA:
            return
        self._cancel_timed(kernel)
        self._pending = _DELTA
        kernel.schedule_delta(self)

    def _cancel_timed(self, kernel: "Kernel") -> None:
        if self._timed_handle is not None:
            kernel.cancel_timed(self._timed_handle)
            self._timed_handle = None

    # -- firing (kernel-internal) ------------------------------------------

    def _fire(self, kernel: "Kernel") -> None:
        """Deliver the notification: make sensitive processes runnable."""
        self._pending = None
        self._timed_handle = None
        for process in self._static_sensitive:
            kernel.make_runnable(process, trigger=self)
        if self._dynamic_waiters:
            waiters, self._dynamic_waiters = self._dynamic_waiters, []
            for process in waiters:
                process.clear_dynamic_waits()
                kernel.make_runnable(process, trigger=self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r})"
