"""The discrete-event simulation kernel.

Implements the SystemC 2.0 scheduler loop the paper builds on ([10]):

1. **Evaluation** — run every runnable process.  Processes may write
   primitive channels (requesting updates), notify events, and spawn
   immediate notifications that extend the current evaluation phase.
2. **Update** — apply all requested channel updates.
3. **Delta notification** — fire pending delta notifications; processes
   sensitive to them become runnable.  If any did, go to 1 (next delta
   cycle at the same simulation time).
4. **Time advance** — otherwise advance simulation time to the earliest
   timed notification and fire it.

The kernel is deliberately independent of any analog extension: the AMS
layers (`repro.tdf`, `repro.sync`) attach to it only through ordinary
processes and events, exactly as the paper requires of SystemC-AMS.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, Optional

from .errors import SimulationError
from .events import Event
from .process import Process
from .time import SimTime, ZERO_TIME


class _TimedEntry:
    """Heap entry for a timed notification or a thread wake-up."""

    __slots__ = ("ticks", "seq", "event", "process", "cancelled")

    def __init__(self, ticks: int, seq: int, event=None, process=None):
        self.ticks = ticks
        self.seq = seq
        self.event = event
        self.process = process
        self.cancelled = False

    def __lt__(self, other: "_TimedEntry") -> bool:
        return (self.ticks, self.seq) < (other.ticks, other.seq)


class Kernel:
    """Delta-cycle discrete-event scheduler."""

    _current: Optional["Kernel"] = None

    def __init__(self):
        self.now_ticks = 0
        self.delta_count = 0
        #: Total number of process activations (a cost metric for E8).
        self.activation_count = 0
        self._runnable: list[Process] = []
        self._queued_ids: set[int] = set()
        self._update_queue: list = []
        self._delta_events: list[Event] = []
        self._timed: list[_TimedEntry] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._initialized = False
        self._stop_requested = False
        self._time_callbacks: list[Callable[[int], None]] = []
        #: end tick of the current :meth:`run` call (None = unbounded).
        #: Block-executing TDF clusters read this to clamp how many
        #: periods they may batch without overrunning the run boundary.
        self.run_limit_ticks: Optional[int] = None
        #: Telemetry hub (see :mod:`repro.observe`); ``None`` keeps the
        #: scheduler loop on its unguarded path.
        self.telemetry = None
        self._h_events_per_delta = None
        self._fine_tracer = None
        Kernel._current = self

    def install_telemetry(self, telemetry) -> None:
        """Attach a :class:`repro.observe.Telemetry` hub.

        Pre-binds the per-delta dispatch histogram so the scheduler
        loop never resolves metric names; ``"fine"`` detail additionally
        records one ``kernel.delta`` span per delta cycle.
        """
        self.telemetry = telemetry
        if telemetry is None:
            self._h_events_per_delta = None
            self._fine_tracer = None
            return
        self._h_events_per_delta = telemetry.metrics.histogram(
            "kernel.events_per_delta")
        self._fine_tracer = telemetry.tracer if telemetry.fine else None

    # -- global context -----------------------------------------------------

    @classmethod
    def current(cls) -> Optional["Kernel"]:
        return cls._current

    @property
    def now(self) -> SimTime:
        return SimTime.from_ticks(self.now_ticks)

    # -- registration --------------------------------------------------------

    def register_process(self, process: Process) -> None:
        self._processes.append(process)
        for event in process.static_sensitivity:
            event._attach_kernel(self)
            event.add_static(process)

    def add_time_callback(self, callback: Callable[[int], None]) -> None:
        """Invoke ``callback(now_ticks)`` after every time advance."""
        self._time_callbacks.append(callback)

    # -- scheduling interface used by Event / Signal / Process ----------------

    def make_runnable(self, process: Process, trigger: Optional[Event] = None) -> None:
        if process.terminated or id(process) in self._queued_ids:
            return
        process.last_trigger = trigger
        self._queued_ids.add(id(process))
        self._runnable.append(process)

    def request_update(self, channel) -> None:
        self._update_queue.append(channel)

    def schedule_delta(self, event: Event) -> None:
        self._delta_events.append(event)

    def cancel_delta(self, event: Event) -> None:
        if event in self._delta_events:
            self._delta_events.remove(event)

    def schedule_event(self, event: Event, ticks: int) -> _TimedEntry:
        entry = _TimedEntry(ticks, self._next_seq(), event=event)
        heapq.heappush(self._timed, entry)
        return entry

    def schedule_process_wake(self, process: Process, delay: SimTime) -> _TimedEntry:
        entry = _TimedEntry(
            self.now_ticks + delay.ticks, self._next_seq(), process=process
        )
        heapq.heappush(self._timed, entry)
        return entry

    def cancel_timed(self, entry: _TimedEntry) -> None:
        entry.cancelled = True

    def trigger_event_now(self, event: Event) -> None:
        event._fire(self)

    def stop(self) -> None:
        """Request the simulation to halt at the end of the current delta."""
        self._stop_requested = True

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- the scheduler loop ----------------------------------------------------

    def initialize(self) -> None:
        """Run the initialization phase: every process runs once, except
        those marked ``dont_initialize``."""
        if self._initialized:
            return
        self._initialized = True
        for process in self._processes:
            if not process.dont_initialize:
                self.make_runnable(process)
        self._settle_current_time()

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        """Run the simulation for ``duration`` (or until no activity).

        Returns the simulation time at which the run stopped.
        """
        limit = None if duration is None else self.now_ticks + duration.ticks
        # Published before initialization: the first cluster period runs
        # during initialize() and must already see the run boundary.
        self.run_limit_ticks = limit
        self.initialize()
        while not self._stop_requested:
            entry = self._pop_next_timed()
            if entry is None:
                break
            if limit is not None and entry.ticks > limit:
                heapq.heappush(self._timed, entry)
                self.now_ticks = limit
                break
            self._advance_to(entry.ticks)
            self._dispatch_timed(entry)
            while self._timed and not self._timed[0].cancelled and \
                    self._timed[0].ticks == self.now_ticks:
                self._dispatch_timed(heapq.heappop(self._timed))
            self._settle_current_time()
        if limit is not None and not self._stop_requested:
            self.now_ticks = max(self.now_ticks, limit)
        self._stop_requested = False
        return self.now

    def pending_activity(self) -> bool:
        """True if any timed notification remains scheduled."""
        return any(not e.cancelled for e in self._timed)

    def next_activity_ticks(self) -> Optional[int]:
        while self._timed and self._timed[0].cancelled:
            heapq.heappop(self._timed)
        return self._timed[0].ticks if self._timed else None

    # -- internals ----------------------------------------------------------

    def _advance_to(self, ticks: int) -> None:
        if ticks < self.now_ticks:
            raise SimulationError("scheduler attempted to move time backwards")
        self.now_ticks = ticks
        for callback in self._time_callbacks:
            callback(ticks)

    def _pop_next_timed(self) -> Optional[_TimedEntry]:
        while self._timed:
            entry = heapq.heappop(self._timed)
            if not entry.cancelled:
                return entry
        return None

    def _dispatch_timed(self, entry: _TimedEntry) -> None:
        if entry.cancelled:
            return
        if entry.event is not None:
            entry.event._fire(self)
        elif entry.process is not None:
            entry.process._timer_handle = None
            self.make_runnable(entry.process)

    def _settle_current_time(self) -> None:
        """Run delta cycles until the current time has no more activity."""
        histogram = self._h_events_per_delta
        fine = self._fine_tracer
        while True:
            if not (self._runnable or self._update_queue or self._delta_events):
                return
            if fine is not None:
                delta_start = _time.perf_counter()
            dispatched = 0
            # Evaluation phase.
            while self._runnable:
                batch, self._runnable = self._runnable, []
                self._queued_ids.clear()
                dispatched += len(batch)
                for process in batch:
                    self.activation_count += 1
                    process._run(self)
                if self._stop_requested:
                    return
            # Update phase.
            updates, self._update_queue = self._update_queue, []
            for channel in updates:
                channel._update(self)
            # Delta notification phase.
            deltas, self._delta_events = self._delta_events, []
            for event in deltas:
                event._fire(self)
            self.delta_count += 1
            if histogram is not None:
                histogram.observe(dispatched)
                if fine is not None:
                    fine.complete(
                        "kernel.delta", delta_start,
                        _time.perf_counter() - delta_start,
                        track="kernel",
                        attrs={"t_ticks": self.now_ticks,
                               "dispatched": dispatched})
