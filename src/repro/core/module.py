"""Hierarchical modules.

A :class:`Module` owns ports, signals, child modules and processes.  The
hierarchy is explicit: a child receives its parent in the constructor.
Processes are declared with :meth:`method` and :meth:`thread` during
construction and registered with the kernel at elaboration.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence

from .errors import BindingError, ElaborationError
from .events import Event
from .port import Port
from .process import METHOD, THREAD, Process


class Module:
    """Base class for every structural element of a design."""

    def __init__(self, name: str, parent: Optional["Module"] = None):
        self.name = name
        self.parent = parent
        self.children: list[Module] = []
        self._processes: list[Process] = []
        if parent is not None:
            parent._add_child(self)

    # -- hierarchy -----------------------------------------------------------

    def _add_child(self, child: "Module") -> None:
        if any(c.name == child.name for c in self.children):
            raise ElaborationError(
                f"module {self.full_name()!r} already has a child "
                f"named {child.name!r}"
            )
        self.children.append(child)

    def full_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.full_name()}.{self.name}"

    def path(self) -> str:
        """The full hierarchical path of this module (alias of
        :meth:`full_name`), e.g. ``"tb.rx.mixer"``."""
        return self.full_name()

    def walk(self) -> Iterator["Module"]:
        """Depth-first iteration over this module and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, path: str) -> "Module":
        """Look up a descendant by dot-separated relative path."""
        node = self
        for part in path.split("."):
            for child in node.children:
                if child.name == part:
                    node = child
                    break
            else:
                raise KeyError(f"no child {part!r} under {node.full_name()!r}")
        return node

    # -- process declaration ---------------------------------------------------

    def method(
        self,
        func: Callable,
        sensitivity: Sequence = (),
        dont_initialize: bool = False,
        name: Optional[str] = None,
    ) -> Process:
        """Declare a method process (re-invoked on every trigger)."""
        return self._declare(METHOD, func, sensitivity, dont_initialize, name)

    def thread(
        self,
        func: Callable,
        sensitivity: Sequence = (),
        dont_initialize: bool = False,
        name: Optional[str] = None,
    ) -> Process:
        """Declare a thread process (a generator yielding wait conditions)."""
        return self._declare(THREAD, func, sensitivity, dont_initialize, name)

    def _declare(self, kind, func, sensitivity, dont_initialize, name) -> Process:
        # Sensitivity entries may be ports that are not bound yet;
        # resolution to events happens at elaboration (resolve_sensitivity).
        pname = name or getattr(func, "__name__", "proc")
        process = Process(
            f"{self.full_name()}.{pname}", kind, func, list(sensitivity),
            dont_initialize,
        )
        self._processes.append(process)
        return process

    # -- elaboration hooks (optional overrides) -----------------------------------

    def end_of_elaboration(self) -> None:
        """Called after binding resolution, before simulation starts."""

    def start_of_simulation(self) -> None:
        """Called immediately before the first delta cycle."""

    # -- elaboration helpers ------------------------------------------------------

    def ports(self) -> list[Port]:
        return [v for v in vars(self).values() if isinstance(v, Port)]

    def check_bindings(self) -> None:
        for port in self.ports():
            try:
                port.resolve()
            except BindingError as exc:
                # Port names are leaf-local; re-raise with the full
                # hierarchical path so the failing instance is findable.
                raise BindingError(
                    f"in module {self.path()!r}: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.full_name()!r})"


def resolve_sensitivity(process: Process) -> None:
    """Resolve a process's static sensitivity list to concrete events.

    Called at elaboration, once all port bindings exist.
    """
    process.static_sensitivity = [
        _as_event(s) for s in process.static_sensitivity
    ]


def _as_event(obj) -> Event:
    """Accept an Event, or anything with a ``default_event()`` method."""
    if isinstance(obj, Event):
        return obj
    default = getattr(obj, "default_event", None)
    if callable(default):
        return default()
    raise ElaborationError(
        f"cannot use {obj!r} in a sensitivity list; expected an Event, "
        "Signal, or Port"
    )
