"""Ports: typed connection points between modules and channels.

A port is bound to a signal (or transitively to another port of a parent
module).  Binding is resolved at elaboration time; reading or writing an
unbound port raises :class:`~repro.core.errors.BindingError`.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar, Union

from .errors import BindingError
from .events import Event
from .signal import Signal

T = TypeVar("T")


class Port(Generic[T]):
    """Base port; holds the binding target."""

    direction = "inout"

    def __init__(self, name: str = "port"):
        self.name = name
        self._target: Optional[Union[Signal, "Port"]] = None

    def bind(self, target: Union[Signal, "Port"]) -> None:
        if self._target is not None:
            raise BindingError(f"port {self.name!r} is already bound")
        if not isinstance(target, (Signal, Port)):
            raise BindingError(
                f"port {self.name!r} bound to {type(target).__name__}; "
                "expected Signal or Port"
            )
        self._target = target

    #: ``port(sig)`` is shorthand for ``port.bind(sig)``, as in SystemC.
    __call__ = bind

    @property
    def bound(self) -> bool:
        return self._target is not None

    def resolve(self) -> Signal:
        """Follow port-to-port bindings down to the concrete signal."""
        seen = set()
        target = self._target
        while isinstance(target, Port):
            if id(target) in seen:
                raise BindingError(f"port {self.name!r} has a binding cycle")
            seen.add(id(target))
            target = target._target
        if target is None:
            raise BindingError(f"port {self.name!r} is unbound")
        return target

    def default_event(self) -> Event:
        return self.resolve().default_event()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class InPort(Port[T]):
    """Read-only port."""

    direction = "in"

    def read(self) -> T:
        return self.resolve().read()

    @property
    def value(self) -> T:
        return self.read()

    def event(self) -> bool:
        return self.resolve().event()

    def posedge_event(self) -> Event:
        return self.resolve().posedge_event()

    def negedge_event(self) -> Event:
        return self.resolve().negedge_event()


class OutPort(Port[T]):
    """Write-only port."""

    direction = "out"

    def write(self, value: T) -> None:
        self.resolve().write(value)


class InOutPort(InPort[T]):
    """Readable and writable port."""

    direction = "inout"

    def write(self, value: T) -> None:
        self.resolve().write(value)
