"""Textual reference → Python object resolution.

The campaign CLI, the campaign service and its remote workers all name
models *textually* — a spec file on disk, optionally qualified with an
attribute (``model.py::Top``) or a dotted module path
(``package.module:attr``) — and must turn that name into the same
Python object in every process that needs it.  Centralizing the
resolution here guarantees the three consumers agree on module
registration semantics: a file loaded through
:func:`load_module_from_path` is registered in ``sys.modules`` *before*
execution, so the callables it defines pickle by reference into
``fork``-ed worker processes and re-resolve by import in ``spawn``-ed
or remote ones.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path
from types import ModuleType
from typing import Optional, Tuple


class ResolutionError(Exception):
    """A textual reference could not be resolved to an object."""


def module_name_for_path(path: Path) -> str:
    """Stable ``sys.modules`` key for a file loaded by path."""
    return f"repro_spec_{path.stem}"


def load_module_from_path(path, module_name: Optional[str] = None
                          ) -> ModuleType:
    """Import the Python file at ``path`` and return its module.

    The module is registered in ``sys.modules`` under a stable name
    derived from the file stem (override with ``module_name``), and a
    previously loaded module under that name for the *same* file is
    returned as-is — repeated resolution of one spec inside a worker
    process costs one dict lookup, not a re-import.
    """
    path = Path(path)
    if not path.exists():
        raise ResolutionError(f"file not found: {path}")
    name = module_name or module_name_for_path(path)
    cached = sys.modules.get(name)
    if cached is not None and \
            getattr(cached, "__file__", None) == str(path):
        return cached
    spec = importlib.util.spec_from_file_location(name, str(path))
    if spec is None or spec.loader is None:
        raise ResolutionError(f"cannot import file: {path}")
    module = importlib.util.module_from_spec(spec)
    # Register before exec so module-level callables pickle by
    # reference into fork()ed workers.
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(name, None)
        raise ResolutionError(f"error importing {path}: {exc}") from exc
    return module


def split_reference(ref: str) -> Tuple[str, Optional[str]]:
    """Split ``"target::attr"`` / ``"module:attr"`` into its parts.

    ``::`` takes precedence (file references may contain drive-letter
    colons on some platforms); a bare reference returns ``(ref, None)``.
    """
    if "::" in ref:
        target, _, attr = ref.partition("::")
        return target, (attr or None)
    if ":" in ref and "/" not in ref.split(":", 1)[0] \
            and not ref.split(":", 1)[0].endswith(".py"):
        target, _, attr = ref.partition(":")
        return target, (attr or None)
    return ref, None


def resolve_reference(ref: str):
    """Resolve ``"path.py::attr"`` or ``"pkg.module:attr"`` to an object.

    Without an attribute part the module object itself is returned.
    """
    target, attr = split_reference(ref)
    if target.endswith(".py") or Path(target).exists():
        module = load_module_from_path(Path(target))
    else:
        try:
            module = importlib.import_module(target)
        except ImportError as exc:
            raise ResolutionError(
                f"cannot resolve {ref!r}: {exc}") from exc
    if attr is None:
        return module
    try:
        return getattr(module, attr)
    except AttributeError:
        raise ResolutionError(
            f"{target!r} has no attribute {attr!r}") from None
