"""Exception hierarchy for the simulation framework."""


class SimulationError(Exception):
    """Base class for all framework errors."""


class ElaborationError(SimulationError):
    """Raised when the design hierarchy cannot be elaborated.

    Typical causes: unbound ports, duplicate names, rate-inconsistent
    dataflow graphs, or singular network topologies detected before the
    simulation starts.
    """


class SchedulingError(SimulationError):
    """Raised when a static schedule cannot be constructed.

    For SDF/TDF this means the balance equations have no non-trivial
    solution or the graph deadlocks; for the DE kernel it signals an
    inconsistent process state.
    """


class BindingError(ElaborationError):
    """Raised when a port is bound incorrectly (wrong type, double bind)."""


class SolverError(SimulationError):
    """Raised when a continuous-time solver fails.

    Examples: singular system matrix, Newton iteration divergence, or a
    timestep underflow in the variable-step integrator.

    Resilience-aware raisers attach a structured
    :class:`~repro.resilience.health.DiagnosticReport` under the
    ``diagnostic`` attribute (``None`` when absent).
    """

    diagnostic = None


class ConvergenceError(SolverError):
    """Raised when an iterative numerical method fails to converge.

    Carries structured failure data so a diverged run is diagnosable
    without rerunning: ``iterations`` (count performed),
    ``residual_norm`` (final ``|F|``), ``time_point`` (simulated time of
    the failing step, if any) and ``residual_history`` (per-iteration
    norms).  All are ``None``/empty when the raiser had nothing better.
    """

    def __init__(self, message: str = "", *, iterations=None,
                 residual_norm=None, time_point=None,
                 residual_history=None):
        details = []
        if iterations is not None and "iteration" not in message:
            details.append(f"iterations={iterations}")
        if residual_norm is not None and "|F|" not in message:
            details.append(f"|F|={residual_norm:.3e}")
        if time_point is not None and "t=" not in message:
            details.append(f"t={time_point:.6e}")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.iterations = iterations
        self.residual_norm = residual_norm
        self.time_point = time_point
        self.residual_history = list(residual_history or [])


class SynchronizationError(SimulationError):
    """Raised when discrete and continuous parts cannot be synchronized.

    Examples: inconsistent timestep assignments in a TDF cluster, or a
    converter port accessed outside its cluster's activation window.
    """
