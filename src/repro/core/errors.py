"""Exception hierarchy for the simulation framework."""


class SimulationError(Exception):
    """Base class for all framework errors."""


class ElaborationError(SimulationError):
    """Raised when the design hierarchy cannot be elaborated.

    Typical causes: unbound ports, duplicate names, rate-inconsistent
    dataflow graphs, or singular network topologies detected before the
    simulation starts.
    """


class SchedulingError(SimulationError):
    """Raised when a static schedule cannot be constructed.

    For SDF/TDF this means the balance equations have no non-trivial
    solution or the graph deadlocks; for the DE kernel it signals an
    inconsistent process state.
    """


class BindingError(ElaborationError):
    """Raised when a port is bound incorrectly (wrong type, double bind)."""


class SolverError(SimulationError):
    """Raised when a continuous-time solver fails.

    Examples: singular system matrix, Newton iteration divergence, or a
    timestep underflow in the variable-step integrator.
    """


class ConvergenceError(SolverError):
    """Raised when an iterative numerical method fails to converge."""


class SynchronizationError(SimulationError):
    """Raised when discrete and continuous parts cannot be synchronized.

    Examples: inconsistent timestep assignments in a TDF cluster, or a
    converter port accessed outside its cluster's activation window.
    """
