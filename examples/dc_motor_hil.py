"""Automotive: DC-motor speed control with software in the loop.

The paper's Phase 3 domain: a multi-discipline (electro-mechanical)
plant — a PWM-driven DC motor with rotational inertia and friction —
controlled by a discrete-time PI controller running as a DE software
process, closing the loop through DE<->TDF converter ports.  This is the
"virtual prototype including software-in-the-loop components" of the
requirements section.

Run:  python examples/dc_motor_hil.py
"""

import numpy as np

from repro.core import Module, Signal, SimTime, Simulator
from repro.eln import Network, Vsource, dc_analysis
from repro.lib import TdfSink
from repro.multidomain import DcMotor, Inertia, RotationalDamper
from repro.sync import ElnTdfModule
from repro.tdf import TdfDeIn, TdfModule, TdfOut, TdfSignal

KT = 0.05       # torque constant [N*m/A]
R_A = 1.0       # armature resistance [ohm]
L_A = 1e-3      # armature inductance [H]
J = 5e-4        # rotor inertia [kg*m^2]
B = 1e-4        # viscous friction [N*m*s]
TARGET_SPEED = 150.0  # [rad/s]


def build_plant() -> Network:
    net = Network("motor_rig")
    net.add(Vsource("Vdrive", "vin", "0"))
    DcMotor("mot", net, "vin", "0", "w", kt=KT, r_a=R_A, l_a=L_A)
    net.add(Inertia("J", "w", J))
    net.add(RotationalDamper("b", "w", "0", B))
    return net


class VoltageCommand(TdfModule):
    """Bridges the controller's DE output into the TDF plant drive."""

    def __init__(self, name, de_signal, parent=None):
        super().__init__(name, parent)
        self.out = TdfOut("out")
        self.de_in = TdfDeIn("de_in")
        self.de_in(de_signal)

    def set_attributes(self):
        self.set_timestep(SimTime(100, "us"))

    def processing(self):
        self.out.write(float(self.de_in.read()))


class Rig(Module):
    def __init__(self):
        super().__init__("rig")
        self.command = Signal("command", initial=0.0)
        self.bridge = VoltageCommand("bridge", self.command, parent=self)
        self.plant = ElnTdfModule("plant", build_plant(), parent=self,
                                  oversample=4)
        self.speed_sink = TdfSink("speed_sink", self)
        s_cmd = TdfSignal("s_cmd")
        s_speed = TdfSignal("s_speed")
        self.bridge.out(s_cmd)
        self.plant.drive_voltage("Vdrive")(s_cmd)
        self.plant.sample_voltage("w")(s_speed)
        self.speed_sink.inp(s_speed)
        self.log = []
        self.thread(self.controller)

    def controller(self):
        """Discrete PI controller at 1 kHz, as software would run it."""
        # PI tuned to cancel the mechanical pole (tau ~ 0.19 s) with
        # ~30 rad/s crossover; the integrator is clamped (anti-windup).
        kp, ki = 0.3, 1.5
        dt = 1e-3
        integral = 0.0
        while True:
            yield SimTime(1, "ms")
            samples = self.speed_sink.samples
            speed = samples[-1] if samples else 0.0
            error = TARGET_SPEED - speed
            integral = float(np.clip(integral + error * dt,
                                     -24.0 / ki, 24.0 / ki))
            command = float(np.clip(kp * error + ki * integral,
                                    -24.0, 24.0))
            self.command.write(command)
            self.log.append((speed, command))


def main() -> None:
    # Open-loop sanity: DC gain of the plant at a fixed 12 V drive.
    dc_net = build_plant()
    for component in dc_net.components:
        if component.name == "Vdrive":
            component.waveform = lambda t: 12.0
    dc = dc_analysis(dc_net)
    print(f"open-loop speed at 12 V : {dc.voltage('w'):7.2f} rad/s")

    rig = Rig()
    Simulator(rig).run(SimTime(300, "ms"))
    t, speed = rig.speed_sink.as_arrays()
    settled = speed[t > 0.2]
    print(f"closed-loop target      : {TARGET_SPEED:7.2f} rad/s")
    print(f"closed-loop final speed : {speed[-1]:7.2f} rad/s")
    print(f"steady-state error      : "
          f"{abs(np.mean(settled) - TARGET_SPEED):7.3f} rad/s")
    overshoot = (np.max(speed) - TARGET_SPEED) / TARGET_SPEED
    print(f"overshoot               : {overshoot:7.1%}")
    final_command = rig.log[-1][1]
    expected_v = TARGET_SPEED * (KT * KT + R_A * B) / KT
    print(f"controller output       : {final_command:7.2f} V "
          f"(theory {expected_v:.2f} V)")


if __name__ == "__main__":
    main()
