"""SNR corner sweep of the ADSL front-end (Figure 1 of the paper).

The receive SNDR of the SLIC/codec virtual prototype depends on the
subscriber-line corner (line length/termination spread) and on the
software-programmed receive gain.  This campaign sweeps named line
corners against a small RX-gain grid and tabulates the SNDR — the
signoff-style question ("does the codec meet SNR at every corner and
gain setting?") the paper's methodology poses but a single simulation
cannot answer.

The model under test is :func:`run_once` from
``benchmarks/bench_e1_adsl.py``.

Run directly:            python examples/campaign_adsl_corners.py
Or through the CLI:      python -m repro.campaign \
                             examples/campaign_adsl_corners.py \
                             --workers 4 --out /tmp/adsl_corners
(with PYTHONPATH=src in both cases.)
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
for _p in (str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from bench_e1_adsl import run_once  # noqa: E402
from repro.campaign import (  # noqa: E402
    Campaign,
    CampaignRunner,
    Corners,
    Sweep,
)

#: Line corners: nominal, a short low-loss loop, and a long lossy loop
#: with degraded termination.
LINE_CORNERS = Corners({
    "typical": {"line_series_r": 50.0, "line_shunt_c": 15e-9,
                "subscriber_r": 600.0},
    "short_loop": {"line_series_r": 20.0, "line_shunt_c": 6e-9,
                   "subscriber_r": 600.0},
    "long_loop": {"line_series_r": 120.0, "line_shunt_c": 40e-9,
                  "subscriber_r": 900.0},
})

CAMPAIGN = Campaign(
    name="adsl-snr-corners",
    description="RX SNDR of the ADSL SLIC/codec across line corners "
                "and programmed receive gains",
    space=LINE_CORNERS * Sweep({"rx_gain_db": [-24.0, -18.0, -12.0],
                                "duration_us": [6000]}),
    run=run_once,
    root_seed=1,
    seed_key=None,   # fully deterministic system — no randomness
)


def main() -> None:
    runner = CampaignRunner(CAMPAIGN, workers=4, timeout=300.0)
    results = runner.run()
    print(f"{runner.stats['total']} runs "
          f"({runner.stats['cached']} cached, "
          f"{runner.stats['executed']} executed)\n")
    print(results.format_table(
        ["corner", "rx_gain_db", "sndr_db", "line_level",
         "hook_seen"]))
    worst = results.min("sndr_db")
    print(f"\nworst-corner RX SNDR: {worst:.1f} dB "
          f"({'PASS' if worst > 30.0 else 'FAIL'} vs 30 dB spec)")


if __name__ == "__main__":
    main()
