"""Monte Carlo yield analysis of the pipelined ADC (seed work [2]).

Bonnerud's digital noise cancellation claims to recover the resolution
lost to capacitor-mismatch-induced stage gain errors.  A single run
cannot substantiate a yield figure — this campaign sweeps the mismatch
sigma and, at each level, draws Monte Carlo samples of the per-stage
gain errors and comparator offsets, then reports the ENOB distribution
and the yield against a 9-bit spec with and without calibration.

The model under test is :func:`run_once` from
``benchmarks/bench_e4_pipelined_adc.py`` — the campaign reuses the
benchmark's setup rather than duplicating it.

Run directly:            python examples/campaign_adc_yield.py
Or through the CLI:      python -m repro.campaign \
                             examples/campaign_adc_yield.py \
                             --workers 4 --out /tmp/adc_yield
(with PYTHONPATH=src in both cases.)
"""

import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parents[1]
for _p in (str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _p not in sys.path:
        sys.path.insert(0, _p)

from bench_e4_pipelined_adc import run_once  # noqa: E402
from repro.campaign import (  # noqa: E402
    Campaign,
    CampaignRunner,
    MonteCarlo,
    Sweep,
)

SAMPLES_PER_POINT = 12
ENOB_SPEC = 9.0

CAMPAIGN = Campaign(
    name="adc-mismatch-yield",
    description="Monte Carlo ENOB/yield vs capacitor mismatch for the "
                "pipelined ADC with digital noise cancellation",
    space=Sweep({
        "mismatch_rms": [0.002, 0.005, 0.01, 0.02],
        "n_samples": [1024],
    }) * MonteCarlo(SAMPLES_PER_POINT),
    run=run_once,
    root_seed=2003,
)


def main() -> None:
    runner = CampaignRunner(CAMPAIGN, workers=4)
    results = runner.run()
    print(f"{runner.stats['total']} runs "
          f"({runner.stats['cached']} cached, "
          f"{runner.stats['executed']} executed)\n")

    header = (f"{'mismatch':>9} {'ENOB cal (mean/p5)':>20} "
              f"{'ENOB raw (mean)':>16} "
              f"{'yield cal':>10} {'yield raw':>10}")
    print(header)
    print("-" * len(header))
    for mismatch in CAMPAIGN.space.left.axes["mismatch_rms"]:
        subset = results.where(mismatch_rms=mismatch)
        yield_cal = subset.yield_fraction(
            lambda m: m["enob_cal"] >= ENOB_SPEC)
        yield_raw = subset.yield_fraction(
            lambda m: m["enob_raw"] >= ENOB_SPEC)
        print(f"{mismatch:>9.3f} "
              f"{subset.mean('enob_cal'):>10.2f}/"
              f"{subset.percentile('enob_cal', 5):<9.2f} "
              f"{subset.mean('enob_raw'):>16.2f} "
              f"{yield_cal:>10.0%} {yield_raw:>10.0%}")
    print("\nDigital noise cancellation keeps yield near 100% at "
          "mismatch levels where the raw reconstruction collapses.")


if __name__ == "__main__":
    main()
