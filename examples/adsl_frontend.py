"""Figure 1: the ADSL subscriber-line-interface / codec virtual prototype.

Runs the paper's motivating system end to end — software-controlled
transmission of a voice-band tone through the Σ∆ DAC, smoothing filter,
high-voltage driver, subscriber-line RLC ladder, receive VGA,
anti-alias filter, Σ∆ ADC, CIC + FIR decimation chain, and DSP level
meter — then prints the measured receive SNDR and the frequency-domain
views of the starred analog blocks.

Run:  python examples/adsl_frontend.py

With ``--observe DIR`` the run records unified telemetry
(see :mod:`repro.observe`) and exports ``trace.json`` (open it at
https://ui.perfetto.dev), ``trace.jsonl`` and ``metrics.json`` under
``DIR``; ``--duration MS`` shortens the simulated time (CI runs 2 ms).
"""

import argparse

import numpy as np

from repro.adsl import (
    AdslConfig,
    AdslSystem,
    antialias_transfer,
    end_to_end_analog_transfer,
    line_output_noise,
    line_transfer,
    smoothing_transfer,
)
from repro.core import SimTime, Simulator
from repro.ct import magnitude_db


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--observe", metavar="DIR", default=None,
                        help="record telemetry and export trace.json / "
                        "trace.jsonl / metrics.json under DIR")
    parser.add_argument("--duration", type=float, default=25.0,
                        metavar="MS", help="simulated time in "
                        "milliseconds (default: 25)")
    args = parser.parse_args(argv)

    config = AdslConfig()
    system = AdslSystem(config)
    simulator = Simulator(system,
                          observe=bool(args.observe))

    print(f"running {args.duration:g} ms of the ADSL SLIC/codec "
          "prototype ...")
    simulator.run(SimTime(int(args.duration * 1000), "us"))

    if args.observe:
        paths = simulator.export_telemetry(args.observe)
        print(f"telemetry exported: {paths['chrome']} "
              f"(load in https://ui.perfetto.dev)")
        print(simulator.telemetry.summary(
            extra=simulator.metrics_snapshot()))

    print(f"\n-- time domain "
          f"({len(system.tap_sub.samples)} line samples) --")
    drive = np.asarray(system.tap_drive.samples)
    sub = np.asarray(system.tap_sub.samples)
    print(f"driver output peak   : {np.max(np.abs(drive)):6.2f} V")
    print(f"subscriber peak      : {np.max(np.abs(sub)):6.2f} V")
    print(f"DSP output samples   : {len(system.rx_output())}")
    print(f"receive SNDR         : {system.rx_snr_db():6.1f} dB")

    polls = [entry for entry in system.software_log if entry[0] == "poll"]
    print(f"software polls       : {len(polls)}")
    print(f"last level register  : {polls[-1][1][0]} (milli-units RMS)")
    print(f"hook status observed : {any(p[1][1] for p in polls)}")

    print("\n-- frequency domain (starred blocks of Figure 1) --")
    freqs = np.array([1e2, 1e3, config.tone_frequency, 1e4, 1e5])
    rows = {
        "line (drv->sub)": line_transfer(config, freqs),
        "TX smoothing": smoothing_transfer(config, freqs),
        "RX anti-alias": antialias_transfer(config, freqs),
        "end-to-end analog": end_to_end_analog_transfer(config, freqs),
    }
    header = "block".ljust(20) + "".join(f"{f:>12.0f}" for f in freqs)
    print(header + "   [Hz]")
    for name, response in rows.items():
        mags = magnitude_db(response)
        print(name.ljust(20)
              + "".join(f"{m:>12.1f}" for m in mags) + "   [dB]")

    noise = line_output_noise(config, np.array([config.tone_frequency]))
    print(f"\nline thermal noise at tone: "
          f"{np.sqrt(noise[0]) * 1e9:.2f} nV/sqrt(Hz)")


if __name__ == "__main__":
    main()
