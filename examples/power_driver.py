"""AnalogSL-style power driver (Grimm, seed [8]).

A PWM half-bridge driving an R-L load, simulated three ways:

1. the dedicated piecewise-linear solver (exact per PWM segment);
2. the same circuit as a general nonlinear DAE with a MOS switch,
   integrated by the adaptive Newton solver;
3. the periodic-steady-state shortcut (one linear solve).

Prints waveform agreement and the speedup of the dedicated MoC — the
reason the paper calls for "specialized continuous-time MoCs, e.g. for
power electronics".

Run:  python examples/power_driver.py
"""

import time

import numpy as np

from repro.ct import variable_step_transient
from repro.eln import Resistor, Vsource
from repro.nonlin import NMos, NonlinearNetwork
from repro.power import HalfBridgeDriver, RLLoad

V_SUPPLY = 12.0
R_LOAD = 2.0
L_LOAD = 500e-6
F_PWM = 20e3
DUTY = 0.4
CYCLES = 40


def run_pwl():
    driver = HalfBridgeDriver(
        RLLoad(R_LOAD, L_LOAD), v_supply=V_SUPPLY, r_on=0.05,
        pwm_frequency=F_PWM, duty=DUTY,
    )
    start = time.perf_counter()
    times, states = driver.simulate(CYCLES, samples_per_segment=10)
    elapsed = time.perf_counter() - start
    return times, states[:, 0], elapsed, driver


def run_nonlinear():
    """Same circuit with the switch as a gate-driven power MOSFET.

    The inductor current is approximated by R-L with the MOS in triode
    as the high switch and an ideal freewheel path via a second MOS.
    """
    net = NonlinearNetwork("bridge")
    period = 1.0 / F_PWM

    # 25 V gate drive keeps the high-side device (a source follower
    # whose source sits near the 12 V rail) in deep triode, matching the
    # PWL model's 50 mohm switch.
    def gate_high(t):
        return 25.0 if (t % period) < DUTY * period else 0.0

    def gate_low(t):
        return 0.0 if (t % period) < DUTY * period else 25.0

    net.add(Vsource("Vdd", "vdd", "0", V_SUPPLY))
    net.add(Vsource("Vgh", "gh", "0", gate_high))
    net.add(Vsource("Vgl", "gl", "0", gate_low))
    # High-side and low-side switches (large k' -> low r_on).
    net.add_device(NMos("Mh", "vdd", "gh", "sw", k_prime=1.7, vth=1.0))
    net.add_device(NMos("Ml", "sw", "gl", "0", k_prime=1.7, vth=1.0))
    net.add(Resistor("Rload", "sw", "x", R_LOAD))
    from repro.eln import Inductor

    net.add(Inductor("Lload", "x", "0", L_LOAD))
    system, index = net.assemble_nonlinear()
    start = time.perf_counter()
    result = variable_step_transient(
        system, CYCLES * period, x0=np.zeros(system.n),
        reltol=1e-4, abstol=1e-6, h0=period / 200,
        h_max=period / 20,
    )
    elapsed = time.perf_counter() - start
    current = index.current_series(result.states, "Lload")
    return result.times, current, elapsed, result


def main() -> None:
    t_pwl, i_pwl, dt_pwl, driver = run_pwl()
    t_nl, i_nl, dt_nl, result = run_nonlinear()

    # Compare on the common tail (steady-ish region).
    i_nl_resampled = np.interp(t_pwl, t_nl, i_nl)
    tail = t_pwl > 0.5 * t_pwl[-1]
    deviation = np.max(np.abs(i_pwl[tail] - i_nl_resampled[tail]))

    print("half-bridge PWM driver, R-L load")
    print(f"  PWL dedicated solver : {dt_pwl * 1e3:8.2f} ms "
          f"({driver.solver.segment_count} segments)")
    print(f"  general nonlinear    : {dt_nl * 1e3:8.2f} ms "
          f"({result.accepted_steps} steps, "
          f"{result.newton_iterations} Newton iterations)")
    print(f"  speedup              : {dt_nl / dt_pwl:8.1f} x")
    print(f"  waveform deviation   : {deviation * 1e3:8.2f} mA "
          f"(steady-state tail)")

    x_ss = driver.steady_state()
    ripple = driver.steady_ripple()[0]
    average = driver.average_output()[0]
    expected = DUTY * V_SUPPLY / (R_LOAD + 0.05)
    print(f"\nperiodic steady state (one linear solve):")
    print(f"  cycle-start current  : {x_ss[0] * 1e3:8.2f} mA")
    print(f"  average current      : {average:8.4f} A "
          f"(duty*V/R = {expected:.4f} A)")
    print(f"  peak-to-peak ripple  : {ripple * 1e3:8.2f} mA")


if __name__ == "__main__":
    main()
