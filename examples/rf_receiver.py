"""RF/wireless: dataflow simulation of a direct-conversion receiver.

The paper's second application domain: "the design of a RF transceiver
at system level ... is usually done using dataflow models to improve
simulation efficiency".  A 200 kHz-offset RF tone is mixed down by a
quadrature LO, lowpass-filtered per rail, and the baseband I/Q pair is
measured for image rejection under LO phase error — all as one TDF
cluster.

Run:  python examples/rf_receiver.py
"""

import numpy as np

from repro.analysis import amplitude_spectrum
from repro.core import Module, SimTime, Simulator
from repro.lib import (
    FirFilter,
    Mixer,
    QuadratureOscillator,
    SaturatingAmp,
    SineSource,
    TdfSink,
    fir_lowpass,
)
from repro.tdf import TdfSignal

FS = 10e6            # simulation rate
F_RF = 2.2e6         # RF carrier
F_LO = 2.0e6         # local oscillator
F_BB = F_RF - F_LO   # expected baseband: 200 kHz


class Receiver(Module):
    def __init__(self, quadrature_error: float = 0.0):
        super().__init__("rx")
        step = SimTime(0.1, "us")
        self.lna_in = SineSource("rf", frequency=F_RF, amplitude=0.05,
                                 parent=self, timestep=step)
        self.lna = SaturatingAmp("lna", gain=10.0, limit=1.0,
                                 parent=self)
        self.lo = QuadratureOscillator(
            "lo", frequency=F_LO, quadrature_error=quadrature_error,
            parent=self,
        )
        self.mix_i = Mixer("mix_i", gain=2.0, parent=self)
        self.mix_q = Mixer("mix_q", gain=2.0, parent=self)
        taps = fir_lowpass(63, 400e3, FS)
        self.lpf_i = FirFilter("lpf_i", taps, parent=self)
        self.lpf_q = FirFilter("lpf_q", taps, parent=self)
        self.sink_i = TdfSink("sink_i", self)
        self.sink_q = TdfSink("sink_q", self)

        s = {name: TdfSignal(name) for name in
             ("rf", "amp", "lo_i", "lo_q", "bb_i", "bb_q",
              "i_f", "q_f")}
        self.lna_in.out(s["rf"])
        self.lna.inp(s["rf"])
        self.lna.out(s["amp"])
        self.lo.i_out(s["lo_i"])
        self.lo.q_out(s["lo_q"])
        self.mix_i.rf(s["amp"])
        self.mix_i.lo(s["lo_i"])
        self.mix_i.out(s["bb_i"])
        self.mix_q.rf(s["amp"])
        self.mix_q.lo(s["lo_q"])
        self.mix_q.out(s["bb_q"])
        self.lpf_i.inp(s["bb_i"])
        self.lpf_i.out(s["i_f"])
        self.lpf_q.inp(s["bb_q"])
        self.lpf_q.out(s["q_f"])
        self.sink_i.inp(s["i_f"])
        self.sink_q.inp(s["q_f"])


def run(quadrature_error: float):
    rx = Receiver(quadrature_error)
    Simulator(rx).run(SimTime(400, "us"))
    i = np.asarray(rx.sink_i.samples)[-2000:]
    q = np.asarray(rx.sink_q.samples)[-2000:]
    return i, q


def sideband_powers(i: np.ndarray, q: np.ndarray):
    """Positive/negative frequency content of the complex baseband."""
    z = i + 1j * q
    spectrum = np.fft.fftshift(np.fft.fft(z * np.hanning(len(z))))
    freqs = np.fft.fftshift(np.fft.fftfreq(len(z), 1 / FS))
    k_pos = np.argmin(np.abs(freqs - F_BB))
    k_neg = np.argmin(np.abs(freqs + F_BB))
    window = 3
    pos = np.sum(np.abs(spectrum[k_pos - window:k_pos + window + 1]) ** 2)
    neg = np.sum(np.abs(spectrum[k_neg - window:k_neg + window + 1]) ** 2)
    return pos, neg


def main() -> None:
    print("direct-conversion receiver, dataflow model")
    print(f"RF {F_RF / 1e6:.1f} MHz, LO {F_LO / 1e6:.1f} MHz -> "
          f"baseband {F_BB / 1e3:.0f} kHz\n")
    i, q = run(0.0)
    freqs, amps = amplitude_spectrum(i, FS)
    k = np.argmin(np.abs(freqs - F_BB))
    print(f"baseband tone on I rail : {freqs[k] / 1e3:.0f} kHz, "
          f"amplitude {amps[k]:.3f}")
    print(f"{'I/Q phase error':>16} {'image rejection':>16}")
    for phase_deg in (0.0, 0.5, 2.0, 5.0):
        i, q = run(np.radians(phase_deg))
        pos, neg = sideband_powers(i, q)
        rejection_db = 10 * np.log10(pos / max(neg, 1e-30))
        print(f"{phase_deg:>15.1f}° {rejection_db:>14.1f} dB")


if __name__ == "__main__":
    main()
