"""All four circuit analyses from one netlist (the "views" objective).

The paper requires a netlist interface "common to all underlying
continuous-time MoCs".  This example parses a SPICE-flavoured netlist of
a diode limiter driving an RC load and runs DC, AC (small-signal at the
operating point), variable-step transient, and harmonic balance
(large-signal frequency domain) — four solvers, one description.

Run:  python examples/netlist_analyses.py
"""

import numpy as np

from repro.ct import (
    ac_sweep,
    dc_operating_point,
    harmonic_balance,
    linearize,
    magnitude_db,
    variable_step_transient,
)
from repro.frontends import parse_netlist

NETLIST = """
* diode limiter with RC load
V1 in 0 SIN(0 3 1k)       ; 3 V, 1 kHz drive
R1 in mid 1k
D1 mid 0 IS=1e-12 N=1.5   ; clamps positive swings
D2 0 mid IS=1e-12 N=1.5   ; clamps negative swings
R2 mid out 4.7k
C2 out 0 33n
.end
"""


def main() -> None:
    network = parse_netlist(NETLIST, name="limiter")
    system, index = network.assemble_nonlinear()
    mid = index.node_index["mid"]
    out = index.node_index["out"]

    # --- DC operating point ----------------------------------------------------
    x_op = dc_operating_point(system)
    print("DC operating point (drive at 0 V):")
    for node in ("in", "mid", "out"):
        print(f"  v({node}) = {index.voltage(x_op, node):+.6f} V")

    # --- small-signal AC at the operating point ----------------------------------
    C, G = linearize(system, x_op)
    b_ac = np.zeros(index.size)
    b_ac[index.current_index["V1"]] = 1.0
    freqs = np.logspace(1, 5, 5)
    phasors = ac_sweep(C, G, b_ac, freqs)
    print("\nsmall-signal |v(out)/v(in)|:")
    for f, row in zip(freqs, phasors):
        print(f"  {f:>9.0f} Hz : {magnitude_db([row[out]])[0]:7.2f} dB")

    # --- transient ---------------------------------------------------------------
    result = variable_step_transient(system, 3e-3, reltol=1e-5,
                                     abstol=1e-8, h0=1e-7)
    v_mid = result.states[:, mid]
    print(f"\ntransient (3 ms, {result.accepted_steps} adaptive steps):")
    print(f"  v(mid) clipped to [{np.min(v_mid):+.3f}, "
          f"{np.max(v_mid):+.3f}] V (3 V drive)")

    # --- harmonic balance ----------------------------------------------------------
    hb = harmonic_balance(system, 1e3, harmonics=9)
    print("\nharmonic balance at 1 kHz (v(mid) spectrum):")
    for k in range(6):
        print(f"  H{k}: {hb.magnitude(k, mid):.4f} V")
    print(f"  THD: {hb.thd(mid):.1%}  "
          f"({hb.iterations} Newton iterations)")
    # Symmetric limiter: odd harmonics only.
    assert hb.magnitude(2, mid) < 1e-6
    assert hb.magnitude(3, mid) > 0.01


if __name__ == "__main__":
    main()
