"""Pipelined ADC with digital noise cancellation (Bonnerud, seed [2]).

Sweeps the per-stage gain error of a 10-bit pipelined ADC and compares
the effective number of bits with and without the digital correction
(reconstruction with calibrated stage gains), plus the agreement with an
independently-coded vectorized golden model.

Run:  python examples/pipelined_adc.py
"""

import numpy as np

from repro.analysis import coherent_tone_frequency, enob_of_tone
from repro.baselines import golden_pipeline_convert
from repro.lib import PipelinedAdc

FS = 1e6
N = 8192
N_STAGES = 7
BACKEND_BITS = 3


def main() -> None:
    f_in = coherent_tone_frequency(FS, N, 17e3)
    t = np.arange(N) / FS
    stimulus = 0.95 * np.sin(2 * np.pi * f_in * t)

    print(f"pipelined ADC: {N_STAGES} x 1.5-bit stages + "
          f"{BACKEND_BITS}-bit backend "
          f"(nominal {N_STAGES + BACKEND_BITS} bits)")
    print(f"test tone: {f_in:.2f} Hz, {N} samples at {FS:.0f} S/s\n")

    header = (f"{'gain error':>11} {'ENOB raw':>10} {'ENOB cal':>10} "
              f"{'recovered':>10} {'vs golden':>10}")
    print(header)
    for gain_error in (0.0, 0.002, 0.005, 0.01, 0.02, 0.05):
        adc = PipelinedAdc(
            n_stages=N_STAGES, backend_bits=BACKEND_BITS,
            gain_errors=[gain_error] * N_STAGES,
        )
        raw = adc.convert_array(stimulus, calibrated=False)
        cal = adc.convert_array(stimulus, calibrated=True)
        golden = golden_pipeline_convert(
            stimulus, N_STAGES, BACKEND_BITS,
            gain_errors=[gain_error] * N_STAGES, calibrated=True,
        )
        enob_raw = enob_of_tone(raw, FS, tone_frequency=f_in)
        enob_cal = enob_of_tone(cal, FS, tone_frequency=f_in)
        agreement = np.max(np.abs(cal - golden))
        print(f"{gain_error:>10.1%} {enob_raw:>10.2f} {enob_cal:>10.2f} "
              f"{enob_cal - enob_raw:>+10.2f} {agreement:>10.1e}")

    print("\nwith thermal noise (0.5 mV RMS per stage):")
    adc = PipelinedAdc(n_stages=N_STAGES, backend_bits=BACKEND_BITS,
                       gain_errors=[0.01] * N_STAGES, noise_rms=5e-4)
    cal = adc.convert_array(stimulus, calibrated=True)
    print(f"  ENOB (calibrated, noisy): "
          f"{enob_of_tone(cal, FS, tone_frequency=f_in):.2f}")


if __name__ == "__main__":
    main()
