"""Quickstart: a mixed-signal RC filter testbench in ~40 lines.

A TDF sine source drives an electrical RC network (conservative-law,
solved by MNA + trapezoidal integration) whose output is sampled back
into the dataflow world; the same network also gets a frequency-domain
(AC) analysis — both from the same equations.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import Module, SimTime, Simulator
from repro.eln import Capacitor, Network, Resistor, Vsource, ac_analysis
from repro.lib import SineSource, TdfSink
from repro.sync import ElnTdfModule
from repro.tdf import TdfSignal

R, C = 1e3, 100e-9          # 1 kHz corner
F_IN = 1.6e3                # near the corner


def build_rc() -> Network:
    net = Network("rc")
    net.add(Vsource("Vin", "in", "0"))      # value supplied by TDF
    net.add(Resistor("R1", "in", "out", R))
    net.add(Capacitor("C1", "out", "0", C))
    return net


class Testbench(Module):
    def __init__(self):
        super().__init__("tb")
        self.s_in = TdfSignal("s_in")
        self.s_out = TdfSignal("s_out")
        self.src = SineSource("src", frequency=F_IN, parent=self,
                              timestep=SimTime(5, "us"))
        self.rc = ElnTdfModule("rc", build_rc(), parent=self, oversample=4)
        self.sink = TdfSink("sink", self)
        self.src.out(self.s_in)
        self.rc.drive_voltage("Vin")(self.s_in)
        self.rc.sample_voltage("out")(self.s_out)
        self.sink.inp(self.s_out)


def main() -> None:
    # --- time domain -------------------------------------------------------
    tb = Testbench()
    Simulator(tb).run(SimTime(10, "ms"))
    t, v = tb.sink.as_arrays()
    steady = v[len(v) // 2:]
    measured_gain = np.max(np.abs(steady))

    # --- frequency domain (same network, same equations) --------------------
    freqs = np.logspace(1, 5, 201)
    ac = ac_analysis(build_rc(), freqs, input_source="Vin")
    h = ac.voltage("out")
    analytic = 1 / np.sqrt(1 + (F_IN * 2 * np.pi * R * C) ** 2)

    print(f"samples simulated : {len(v)}")
    print(f"steady-state gain : {measured_gain:.4f} (transient)")
    print(f"analytic |H(f_in)|: {analytic:.4f}")
    k = np.argmin(np.abs(freqs - F_IN))
    print(f"AC sweep |H(f_in)|: {abs(h[k]):.4f}")
    corner = freqs[np.argmin(np.abs(np.abs(h) - 1 / np.sqrt(2)))]
    print(f"-3 dB corner      : {corner:.0f} Hz "
          f"(expected {1 / (2 * np.pi * R * C):.0f} Hz)")


if __name__ == "__main__":
    main()
